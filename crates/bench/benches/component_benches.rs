//! Criterion microbenchmarks of the simulator's building blocks: event
//! queue, interconnect routing, cache lookups, workload generation, and the
//! TokenB controller's fast paths. These measure the *simulator's* speed (how
//! many simulated events per second the reproduction can sustain), not the
//! simulated system's performance — the latter is what the `table2`/`fig*`
//! binaries report.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use tc_core::TokenBController;
use tc_interconnect::Interconnect;
use tc_memsys::SetAssocCache;
use tc_sim::EventQueue;
use tc_types::{
    Address, BlockAddr, CoherenceController, Destination, MemOp, MemOpKind, Message, MsgKind,
    NodeId, Outbox, ReqId, SystemConfig, Vnet,
};
use tc_workloads::{WorkloadGenerator, WorkloadProfile};

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue/schedule_and_pop_1k", |b| {
        b.iter(|| {
            let mut queue = EventQueue::new();
            for i in 0..1_000u64 {
                queue.schedule((i * 7919) % 1000, i);
            }
            let mut sum = 0u64;
            while let Some((_, v)) = queue.pop() {
                sum = sum.wrapping_add(v);
            }
            black_box(sum)
        })
    });
}

fn bench_interconnect(c: &mut Criterion) {
    let config = SystemConfig::isca03_default();
    c.bench_function("interconnect/torus_unicast", |b| {
        let mut network = Interconnect::new(16, config.interconnect);
        let mut i = 0u64;
        b.iter(|| {
            let msg = Message::new(
                NodeId::new((i % 16) as usize),
                Destination::Node(NodeId::new(((i + 5) % 16) as usize)),
                BlockAddr::new(i),
                MsgKind::GetS,
                Vnet::Request,
                i,
            );
            i += 1;
            black_box(network.send(i, msg))
        })
    });
    c.bench_function("interconnect/torus_broadcast", |b| {
        let mut network = Interconnect::new(16, config.interconnect);
        let mut i = 0u64;
        b.iter(|| {
            let msg = Message::new(
                NodeId::new((i % 16) as usize),
                Destination::Broadcast,
                BlockAddr::new(i),
                MsgKind::GetM,
                Vnet::Request,
                i,
            );
            i += 1;
            black_box(network.send(i, msg))
        })
    });
}

fn bench_cache(c: &mut Criterion) {
    let config = SystemConfig::isca03_default();
    c.bench_function("cache/l2_lookup_hit", |b| {
        let mut cache: SetAssocCache<u64> = SetAssocCache::new(&config.l2, 64);
        for i in 0..4_096u64 {
            cache.insert(BlockAddr::new(i), i);
        }
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 1) % 4_096;
            black_box(cache.get(BlockAddr::new(i)).copied())
        })
    });
}

fn bench_workload_generation(c: &mut Criterion) {
    c.bench_function("workload/oltp_next_op", |b| {
        let profile = WorkloadProfile::oltp();
        let mut generator = WorkloadGenerator::new(&profile, NodeId::new(0), 16, 1);
        b.iter(|| black_box(generator.next_op()))
    });
}

fn bench_tokenb_fast_paths(c: &mut Criterion) {
    let config = SystemConfig::isca03_default();
    c.bench_function("tokenb/write_hit", |b| {
        let mut controller = TokenBController::new(NodeId::new(1), &config);
        // Seed a modified line by delivering all tokens.
        let mut out = Outbox::new();
        controller.handle_message(
            0,
            Message::new(
                NodeId::new(0),
                Destination::Node(NodeId::new(1)),
                BlockAddr::new(16),
                MsgKind::TokenData {
                    tokens: config.token.tokens_per_block,
                    owner: true,
                    dirty: false,
                    from_memory: true,
                    payload: Default::default(),
                },
                Vnet::Response,
                0,
            ),
            &mut out,
        );
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let op = MemOp::new(ReqId::new(i), Address::new(16 * 64), MemOpKind::Store);
            let mut out = Outbox::new();
            black_box(controller.access(i, &op, &mut out))
        })
    });
    c.bench_function("tokenb/snoop_ignore", |b| {
        let mut controller = TokenBController::new(NodeId::new(1), &config);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let msg = Message::new(
                NodeId::new(2),
                Destination::Broadcast,
                BlockAddr::new(i % 1024),
                MsgKind::GetS,
                Vnet::Request,
                i,
            );
            let mut out = Outbox::new();
            controller.handle_message(i, msg, &mut out);
            black_box(out.messages.len())
        })
    });
}

criterion_group!(
    benches,
    bench_event_queue,
    bench_interconnect,
    bench_cache,
    bench_workload_generation,
    bench_tokenb_fast_paths
);
criterion_main!(benches);
