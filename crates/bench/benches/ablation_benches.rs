//! Ablation studies of the design choices called out in `DESIGN.md`: the
//! reissue-timeout policy, the migratory-sharing optimization, the token
//! count, and the persistent-request escalation threshold. Each benchmark
//! runs a small full-system simulation with one knob changed and asserts the
//! run stays correct; the simulated-cycle results for the ablations are
//! discussed in `EXPERIMENTS.md`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tc_system::{RunOptions, System};
use tc_types::{ProtocolKind, SystemConfig};
use tc_workloads::WorkloadProfile;

fn run_with(config: SystemConfig, workload: &WorkloadProfile) -> u64 {
    let mut system = System::build(&config, workload);
    let report = system.run(RunOptions {
        ops_per_node: 800,
        max_cycles: 200_000_000,
        ..RunOptions::default()
    });
    assert!(report.verified().is_ok());
    report.runtime_cycles
}

fn base() -> SystemConfig {
    SystemConfig::isca03_default()
        .with_nodes(8)
        .with_protocol(ProtocolKind::TokenB)
}

fn bench_reissue_timeout(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_reissue_timeout");
    group.sample_size(10);
    for multiplier in [1.0f64, 2.0, 4.0] {
        let mut config = base();
        config.token.reissue_latency_multiplier = multiplier;
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{multiplier}x_avg_latency")),
            &config,
            |b, config| b.iter(|| run_with(config.clone(), &WorkloadProfile::hot_block())),
        );
    }
    group.finish();
}

fn bench_migratory_optimization(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_migratory_optimization");
    group.sample_size(10);
    for enabled in [true, false] {
        let mut config = base();
        config.token.migratory_optimization = enabled;
        group.bench_with_input(
            BenchmarkId::from_parameter(if enabled { "enabled" } else { "disabled" }),
            &config,
            |b, config| b.iter(|| run_with(config.clone(), &WorkloadProfile::oltp())),
        );
    }
    group.finish();
}

fn bench_token_count(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_tokens_per_block");
    group.sample_size(10);
    for tokens in [8u32, 16, 64] {
        let mut config = base();
        config.token.tokens_per_block = tokens;
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("T_{tokens}")),
            &config,
            |b, config| b.iter(|| run_with(config.clone(), &WorkloadProfile::oltp())),
        );
    }
    group.finish();
}

fn bench_persistent_threshold(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_persistent_threshold");
    group.sample_size(10);
    for reissues in [1u32, 4, 8] {
        let mut config = base();
        config.token.reissues_before_persistent = reissues;
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{reissues}_reissues")),
            &config,
            |b, config| b.iter(|| run_with(config.clone(), &WorkloadProfile::hot_block())),
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_reissue_timeout,
    bench_migratory_optimization,
    bench_token_count,
    bench_persistent_threshold
);
criterion_main!(benches);
