//! Table 1: target system parameters.

use tc_types::SystemConfig;

fn main() {
    let c = SystemConfig::isca03_default();
    println!("Table 1: target system parameters (ISCA 2003)\n");
    println!("Coherent memory system");
    println!(
        "  split L1 I & D caches    {} kB, {}-way, {} ns",
        c.l1.size_bytes / 1024,
        c.l1.associativity,
        c.l1.latency_ns
    );
    println!(
        "  unified L2 cache         {} MB, {}-way, {} ns",
        c.l2.size_bytes / (1024 * 1024),
        c.l2.associativity,
        c.l2.latency_ns
    );
    println!("  cache block size         {} bytes", c.block_bytes);
    println!("  DRAM / directory latency {} ns", c.dram_latency_ns);
    println!("  memory/dir controllers   {} ns", c.controller_latency_ns);
    println!(
        "  network link bandwidth   {:.1} GB/s",
        c.interconnect.link_bandwidth_bytes_per_ns
    );
    println!(
        "  network link latency     {} ns (wire + sync + route)",
        c.interconnect.link_latency_ns
    );
    println!("\nProcessors");
    println!("  nodes                    {}", c.num_nodes);
    println!(
        "  outstanding misses       {} (reorder window {} memory ops)",
        c.processor.max_outstanding_misses, c.processor.overlap_window
    );
    println!(
        "  ops per transaction      {}",
        c.processor.ops_per_transaction
    );
    println!("\nToken Coherence");
    println!("  tokens per block (T)     {}", c.token.tokens_per_block);
    println!(
        "  reissue timeout          {}x average miss latency + randomized backoff",
        c.token.reissue_latency_multiplier
    );
    println!(
        "  persistent escalation    after ~{} reissues",
        c.token.reissues_before_persistent
    );
    println!("  token state per block    {} bits", c.token_state_bits());
}
