//! Table 2: percentage of TokenB misses not reissued, reissued once,
//! reissued more than once, and completed by persistent requests, for each
//! commercial workload on the 16-node torus.

use tc_bench::{run_options_from_args, run_points};
use tc_system::experiment::table2_points;

fn main() {
    let options = run_options_from_args();
    println!(
        "Table 2: overhead due to reissued requests (TokenB, 16-node torus, {} ops/node)\n",
        options.ops_per_node
    );
    let rows = run_points(&table2_points(), options);

    println!(
        "{:<12} {:>14} {:>14} {:>15} {:>14}",
        "workload", "not reissued", "reissued once", "reissued > once", "persistent"
    );
    let mut averages = [0.0f64; 4];
    for (label, report) in &rows {
        let row = report.table2_row();
        for (a, v) in averages.iter_mut().zip(row.iter()) {
            *a += v / rows.len() as f64;
        }
        println!(
            "{:<12} {:>13.2}% {:>13.2}% {:>14.2}% {:>13.2}%",
            label, row[0], row[1], row[2], row[3]
        );
    }
    println!(
        "{:<12} {:>13.2}% {:>13.2}% {:>14.2}% {:>13.2}%",
        "Average", averages[0], averages[1], averages[2], averages[3]
    );
    println!(
        "\nPaper reports (Table 2): Apache 95.75 / 3.25 / 0.71 / 0.29, OLTP 97.57 / 1.79 / 0.43 / 0.21,"
    );
    println!("SPECjbb 97.60 / 2.03 / 0.30 / 0.07, average 96.97 / 2.36 / 0.48 / 0.19.");
}
