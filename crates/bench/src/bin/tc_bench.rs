//! `tc-bench` — the one experiment CLI.
//!
//! Resolves a named campaign from the experiment catalogs and runs it
//! through the multi-threaded campaign driver:
//!
//! ```text
//! tc-bench list
//! tc-bench table2
//! tc-bench fig5-runtime --ops 12000 --threads 8
//! tc-bench fig4-traffic --workload oltp --json /tmp/fig4b.json
//! tc-bench sweep64 --ops 20000 --threads 8 --serial-baseline --record BENCH_engine.json
//! ```
//!
//! Replaces the eight per-artifact binaries (`table1`, `table2`,
//! `fig4_runtime`, `fig4_traffic`, `fig5_runtime`, `fig5_traffic`,
//! `scalability`, and `engine_throughput --sweep64`); the retired names
//! still resolve as campaign aliases.

use tc_bench::{
    campaign_sections, merge_bench_fields, render_fault_table, render_reissue_table,
    render_scalability_table, render_table1, resolve_campaign, traffic_classes_cover_total,
    Section, TableKind, CAMPAIGNS, SCALABILITY_NODE_COUNTS,
};
use tc_sim::{JournalRecord, RunJournal};
use tc_system::campaign::{Campaign, CampaignReport};
use tc_system::experiment::{ExperimentPoint, SWEEP64_OPS_PER_NODE};
use tc_system::{RunOptions, System};
use tc_types::{FaultSpec, ProtocolKind, SystemConfig};
use tc_workloads::WorkloadProfile;

/// Parsed command-line options (everything after the campaign name).
struct CliOptions {
    ops: Option<u64>,
    threads: usize,
    workload: Option<WorkloadProfile>,
    protocol: Option<ProtocolKind>,
    faults: Option<FaultSpec>,
    json_path: Option<String>,
    runs_json_path: Option<String>,
    record_path: Option<String>,
    serial_baseline: bool,
    shards: Option<u32>,
}

fn usage() -> String {
    let mut out = String::from("usage: tc-bench <campaign> [options]\n\ncampaigns:\n");
    for spec in CAMPAIGNS {
        out.push_str(&format!("  {:<14} {}\n", spec.name, spec.about));
    }
    out.push_str(
        "  run-one        one point run directly on the engine, with checkpoint/resume \
         (see `tc-bench run-one --help`... run with no args for its usage)\n",
    );
    out.push_str(
        "  hunt           budgeted adversarial-schedule search for persistent-request \
         pathologies (see `tc-bench hunt --help`)\n",
    );
    out.push_str(
        "  serve          host the resident campaign service (see `tc-bench serve --help`)\n  \
         submit         expand a campaign and submit it to a running service\n  \
         status         print a running service's status page\n  \
         shutdown       drain and stop a running service\n",
    );
    out.push_str(
        "\noptions:\n  \
         --ops N             memory operations per node (campaign-specific default)\n  \
         --threads N         campaign worker threads (default: all cores)\n  \
         --workload NAME     restrict figure campaigns to one workload\n  \
         --protocol NAME     keep only points of one protocol\n  \
         --faults SPEC       inject faults, e.g. drop=0.01,dup=0.005,reorder=4,link=2-5@1000..5000\n                      (points carrying their own spec, e.g. faultsweep's, keep it)\n  \
         --json PATH         write the campaign report as JSON\n  \
         --runs-json PATH    write one NDJSON line per run (the campaign service's wire format)\n  \
         --shards N          run every point on the sharded PDES engine with N shards\n                      (sweep64: the campaign stays serial; instead time shards(1) vs\n                      shards(N) on the reference point, verify shard-count\n                      invariance, and record the speedup)\n  \
         --record PATH       (sweep64) merge wall-clock fields into a BENCH_engine.json-style file\n  \
         --serial-baseline   (sweep64) also run with one thread, verify bit-identical reports,\n                      and record the parallel speedup\n",
    );
    out
}

fn parse_options(args: &[String]) -> Result<CliOptions, String> {
    let mut options = CliOptions {
        ops: None,
        threads: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        workload: None,
        protocol: None,
        faults: None,
        json_path: None,
        runs_json_path: None,
        record_path: None,
        serial_baseline: false,
        shards: None,
    };
    let mut i = 0;
    while i < args.len() {
        let arg = args[i].as_str();
        let value = |i: &mut usize| -> Result<String, String> {
            *i += 1;
            args.get(*i)
                .cloned()
                .ok_or_else(|| format!("{arg} requires a value"))
        };
        match arg {
            "--ops" => {
                let v = value(&mut i)?;
                options.ops = Some(v.parse().map_err(|_| format!("bad --ops value: {v}"))?);
            }
            "--threads" => {
                let v = value(&mut i)?;
                options.threads = v.parse().map_err(|_| format!("bad --threads value: {v}"))?;
                if options.threads == 0 {
                    return Err("--threads must be at least 1".to_string());
                }
            }
            "--workload" => {
                let v = value(&mut i)?;
                options.workload = Some(
                    WorkloadProfile::by_name(&v).ok_or_else(|| format!("unknown workload: {v}"))?,
                );
            }
            "--protocol" => {
                let v = value(&mut i)?;
                options.protocol = Some(
                    ProtocolKind::by_name(&v).ok_or_else(|| format!("unknown protocol: {v}"))?,
                );
            }
            "--faults" => {
                let v = value(&mut i)?;
                options.faults =
                    Some(FaultSpec::parse(&v).map_err(|e| format!("bad --faults value: {e}"))?);
            }
            "--json" => options.json_path = Some(value(&mut i)?),
            "--runs-json" => options.runs_json_path = Some(value(&mut i)?),
            "--record" => options.record_path = Some(value(&mut i)?),
            "--serial-baseline" => options.serial_baseline = true,
            "--shards" => {
                let v = value(&mut i)?;
                let shards: u32 = v.parse().map_err(|_| format!("bad --shards value: {v}"))?;
                if shards == 0 {
                    return Err(
                        "--shards must be at least 1 (omit it for the serial engine)".to_string(),
                    );
                }
                options.shards = Some(shards);
            }
            other => return Err(format!("unknown option: {other}")),
        }
        i += 1;
    }
    Ok(options)
}

/// The default per-node operation count of a campaign.
fn default_ops(campaign: &str) -> u64 {
    match campaign {
        // The 64-node points are large; mirror the retired binary's shorter
        // default so a bare `tc-bench scalability` finishes in minutes.
        "scalability" => RunOptions::standard().ops_per_node.min(6_000),
        "sweep64" => SWEEP64_OPS_PER_NODE,
        _ => RunOptions::standard().ops_per_node,
    }
}

fn run_options(campaign: &str, cli: &CliOptions) -> RunOptions {
    let mut options = if campaign == "sweep64" {
        RunOptions::sweep64()
    } else {
        RunOptions::standard()
    };
    options.ops_per_node = cli.ops.unwrap_or_else(|| default_ops(campaign));
    // Campaign-wide fault injection; a point carrying its own spec (the
    // faultsweep catalog's per-class points) overrides this at run time.
    if let Some(faults) = cli.faults {
        options.faults = faults;
    }
    // sweep64's committed wall-clock fields are serial-engine figures; there
    // --shards drives only the epilogue's reference-point scaling
    // measurement, never the campaign itself.
    if campaign != "sweep64" {
        if let Some(shards) = cli.shards {
            options = options.with_shards(shards);
        }
    }
    options
}

/// Runs `points` as one campaign with progress on stderr.
fn run_campaign(
    points: Vec<ExperimentPoint>,
    options: RunOptions,
    threads: usize,
) -> CampaignReport {
    Campaign::new(points)
        .options(options)
        .threads(threads)
        .on_progress(|event| eprintln!("  {event}"))
        .run()
}

/// Re-slices a flattened multi-section campaign report per section.
fn section_slices(report: &CampaignReport, sections: &[Section]) -> Vec<CampaignReport> {
    let mut slices = Vec::with_capacity(sections.len());
    let mut offset = 0;
    for section in sections {
        slices.push(report.slice(offset, section.points.len()));
        offset += section.points.len();
    }
    slices
}

/// Parsed `run-one` options.
struct RunOneOptions {
    protocol: ProtocolKind,
    workload: WorkloadProfile,
    nodes: usize,
    seed: u64,
    ops: u64,
    max_cycles: u64,
    faults: Option<FaultSpec>,
    checkpoint_every: Option<u64>,
    checkpoint_dir: Option<String>,
    resume: Option<String>,
    crash_after: Option<u64>,
    report_out: Option<String>,
    shards: Option<u32>,
}

fn run_one_usage() -> &'static str {
    "usage: tc-bench run-one [options]\n\n\
     Runs one experiment point directly (no campaign driver), with optional\n\
     engine checkpointing, crash simulation, and resume-from-snapshot.\n\n\
     options:\n  \
     --protocol NAME       protocol (default: tokenb)\n  \
     --workload NAME       workload profile (default: oltp)\n  \
     --nodes N             node count (default: 4)\n  \
     --seed N              seed (default: 12)\n  \
     --ops N               memory operations per node (default: 20000)\n  \
     --max-cycles N        cycle budget (default: 1000000000)\n  \
     --faults SPEC         inject faults into the fabric\n  \
     --checkpoint-every N  seal a snapshot every N delivered events\n  \
     --checkpoint-dir DIR  write snap-<events>.tcsnap + journal.tcj into DIR\n  \
     --resume FILE         restore FILE and run to completion instead of starting fresh\n  \
     --crash-after K       exit(42) right after sealing the K-th checkpoint (CI crash gate)\n  \
     --report-out PATH     write the final report (deterministic debug form; sharded runs\n                        write the determinism view) to PATH\n  \
     --shards N            run on the sharded PDES engine with N shards (clamped to the\n                        node count; incompatible with the checkpoint options)\n"
}

fn parse_run_one(args: &[String]) -> Result<RunOneOptions, String> {
    let mut options = RunOneOptions {
        protocol: ProtocolKind::TokenB,
        workload: WorkloadProfile::oltp(),
        nodes: 4,
        seed: 12,
        ops: 20_000,
        max_cycles: 1_000_000_000,
        faults: None,
        checkpoint_every: None,
        checkpoint_dir: None,
        resume: None,
        crash_after: None,
        report_out: None,
        shards: None,
    };
    let mut i = 0;
    while i < args.len() {
        let arg = args[i].as_str();
        let value = |i: &mut usize| -> Result<String, String> {
            *i += 1;
            args.get(*i)
                .cloned()
                .ok_or_else(|| format!("{arg} requires a value"))
        };
        let parse_u64 = |v: String| -> Result<u64, String> {
            v.parse().map_err(|_| format!("bad {arg} value: {v}"))
        };
        match arg {
            "--protocol" => {
                let v = value(&mut i)?;
                options.protocol =
                    ProtocolKind::by_name(&v).ok_or_else(|| format!("unknown protocol: {v}"))?;
            }
            "--workload" => {
                let v = value(&mut i)?;
                options.workload =
                    WorkloadProfile::by_name(&v).ok_or_else(|| format!("unknown workload: {v}"))?;
            }
            "--nodes" => options.nodes = parse_u64(value(&mut i)?)? as usize,
            "--seed" => options.seed = parse_u64(value(&mut i)?)?,
            "--ops" => options.ops = parse_u64(value(&mut i)?)?,
            "--max-cycles" => options.max_cycles = parse_u64(value(&mut i)?)?,
            "--faults" => {
                let v = value(&mut i)?;
                options.faults =
                    Some(FaultSpec::parse(&v).map_err(|e| format!("bad --faults value: {e}"))?);
            }
            "--checkpoint-every" => options.checkpoint_every = Some(parse_u64(value(&mut i)?)?),
            "--checkpoint-dir" => options.checkpoint_dir = Some(value(&mut i)?),
            "--resume" => options.resume = Some(value(&mut i)?),
            "--crash-after" => options.crash_after = Some(parse_u64(value(&mut i)?)?),
            "--report-out" => options.report_out = Some(value(&mut i)?),
            "--shards" => {
                let v = value(&mut i)?;
                let shards: u32 = v.parse().map_err(|_| format!("bad --shards value: {v}"))?;
                if shards == 0 {
                    return Err(
                        "--shards must be at least 1 (omit it for the serial engine)".to_string(),
                    );
                }
                options.shards = Some(shards);
            }
            other => return Err(format!("unknown run-one option: {other}")),
        }
        i += 1;
    }
    if options.checkpoint_every.is_some() && options.checkpoint_dir.is_none() {
        return Err("--checkpoint-every requires --checkpoint-dir".to_string());
    }
    if options.crash_after.is_some() && options.checkpoint_every.is_none() {
        return Err("--crash-after requires --checkpoint-every".to_string());
    }
    if options.shards.is_some() && (options.checkpoint_every.is_some() || options.resume.is_some())
    {
        // The sharded engine has no snapshot plane; a CLI error beats the
        // engine's own panic.
        return Err("--shards is incompatible with --checkpoint-every/--resume".to_string());
    }
    Ok(options)
}

/// `tc-bench run-one`: one point, run directly on the engine so snapshots
/// can be cut, crashed on, and resumed — the CLI face of the snapshot
/// plane. Writes `snap-<events>.tcsnap` plus an append-only `journal.tcj`
/// (both torn-tail tolerant) into the checkpoint directory.
fn run_one(cli: RunOneOptions) {
    let config = SystemConfig::isca03_default()
        .with_nodes(cli.nodes)
        .with_protocol(cli.protocol)
        .with_seed(cli.seed);
    let mut run_options = RunOptions {
        ops_per_node: cli.ops,
        max_cycles: cli.max_cycles,
        ..RunOptions::default()
    };
    if let Some(faults) = cli.faults {
        run_options.faults = faults;
    }
    if let Some(every) = cli.checkpoint_every {
        run_options = run_options.with_checkpoint_every(every);
    }
    if let Some(shards) = cli.shards {
        run_options = run_options.with_shards(shards);
    }

    let mut system = System::build(&config, &cli.workload);

    // The checkpoint sink: seal each snapshot to its own file and keep the
    // journal current, so a crash at any instant leaves a resumable trail.
    let dir = cli.checkpoint_dir.clone();
    if let Some(dir) = &dir {
        std::fs::create_dir_all(dir).expect("create checkpoint dir");
    }
    let mut journal = match &dir {
        Some(dir) => match std::fs::read(format!("{dir}/journal.tcj")) {
            Ok(bytes) => {
                let (journal, torn) = RunJournal::load(&bytes);
                if torn {
                    eprintln!(
                        "journal.tcj has a torn tail (crashed run); {} intact records kept",
                        journal.records().len()
                    );
                }
                journal
            }
            Err(_) => RunJournal::new(),
        },
        None => RunJournal::new(),
    };
    let crash_after = cli.crash_after;
    let mut checkpoints_sealed: u64 = 0;
    let mut sink = |events: u64, bytes: &[u8]| {
        let Some(dir) = &dir else { return };
        let path = format!("{dir}/snap-{events}.tcsnap");
        std::fs::write(&path, bytes).expect("write snapshot");
        journal.append(JournalRecord::Checkpoint {
            events_delivered: events,
            // The snapshot is cut between events; the journal's cycle is
            // informational, so the event count doubles as its stamp.
            cycle: events,
        });
        std::fs::write(format!("{dir}/journal.tcj"), journal.as_bytes()).expect("write journal");
        eprintln!("checkpoint at event {events}: {path}");
        checkpoints_sealed += 1;
        if crash_after == Some(checkpoints_sealed) {
            eprintln!("simulated crash after {checkpoints_sealed} checkpoint(s)");
            std::process::exit(42);
        }
    };

    let report = if let Some(snap_path) = &cli.resume {
        let bytes = std::fs::read(snap_path)
            .unwrap_or_else(|e| panic!("cannot read snapshot {snap_path}: {e}"));
        let progress = system
            .restore(&run_options, &bytes)
            .unwrap_or_else(|e| panic!("cannot restore {snap_path}: {e}"));
        eprintln!(
            "restored {snap_path} at event {}",
            system.events_delivered()
        );
        system.resume_with_checkpoints(run_options, progress, &mut sink)
    } else {
        system.run_with_checkpoints(run_options, &mut sink)
    };

    if let Some(dir) = &dir {
        journal.append(JournalRecord::End {
            events_delivered: system.events_delivered(),
            cycle: report.runtime_cycles,
        });
        std::fs::write(format!("{dir}/journal.tcj"), journal.as_bytes()).expect("write journal");
    }

    println!("{report}");
    // The sharded engine counts deliveries in the report, not on the
    // serial engine's counter.
    let events = if run_options.shards > 0 {
        report.engine.events_delivered
    } else {
        system.events_delivered()
    };
    println!("events_delivered: {events}");
    if let Some(path) = &cli.report_out {
        // A sharded run's deterministic form is its determinism view: the
        // per-shard capacity telemetry legitimately varies with shard count,
        // so writing the view lets CI byte-diff shards(1) against shards(N).
        let text = if run_options.shards > 0 {
            format!("{:#?}\n", report.determinism_view())
        } else {
            format!("{report:#?}\n")
        };
        std::fs::write(path, text).expect("write report");
        eprintln!("wrote {path}");
    }
    if let Err(violation) = report.verified() {
        eprintln!("VERIFICATION FAILURE: {violation}");
        std::process::exit(1);
    }
}

fn hunt_usage() -> &'static str {
    "usage: tc-bench hunt [options]\n\n\
     Budgeted adversarial-schedule search: random probes over the\n\
     AdversarySpec knobs, then greedy mutation of the worst schedule found,\n\
     scored by the pathology objective (worst/p99 miss latency, reissue and\n\
     persistent-request pressure, completion skew). Deterministic in every\n\
     option: the same invocation always reports the same outcome. Any\n\
     verifier violation is shrunk to a minimal replay recipe and fails the\n\
     command.\n\n\
     options:\n  \
     --protocol NAME  protocol to attack (default: tokenb)\n  \
     --scenario NAME  conformance scenario to perturb (default: hot_block_contention)\n  \
     --seed N         workload + probe seed (default: 44382)\n  \
     --budget N       adversarial evaluations to spend (default: 24)\n  \
     --ops N          memory operations per node per evaluation (default: 200)\n  \
     --smoke          fixed CI configuration (seed 44382, budget 8, ops 150);\n                   rejects combining with the knobs above\n"
}

fn parse_hunt(args: &[String]) -> Result<tc_testkit::HuntOptions, String> {
    let mut options = tc_testkit::HuntOptions::default();
    let mut smoke = false;
    let mut tuned = false;
    let mut i = 0;
    while i < args.len() {
        let arg = args[i].as_str();
        let value = |i: &mut usize| -> Result<String, String> {
            *i += 1;
            args.get(*i)
                .cloned()
                .ok_or_else(|| format!("{arg} requires a value"))
        };
        match arg {
            "--protocol" => {
                let v = value(&mut i)?;
                options.protocol =
                    ProtocolKind::by_name(&v).ok_or_else(|| format!("unknown protocol: {v}"))?;
                tuned = true;
            }
            "--scenario" => {
                options.scenario = value(&mut i)?;
                tuned = true;
            }
            "--seed" => {
                let v = value(&mut i)?;
                options.seed = v.parse().map_err(|_| format!("bad --seed value: {v}"))?;
                tuned = true;
            }
            "--budget" => {
                let v = value(&mut i)?;
                options.budget = v.parse().map_err(|_| format!("bad --budget value: {v}"))?;
                if options.budget == 0 {
                    return Err("--budget must be at least 1".to_string());
                }
                tuned = true;
            }
            "--ops" => {
                let v = value(&mut i)?;
                options.ops_per_node = v.parse().map_err(|_| format!("bad --ops value: {v}"))?;
                tuned = true;
            }
            "--smoke" => smoke = true,
            other => return Err(format!("unknown hunt option: {other}")),
        }
        i += 1;
    }
    if smoke {
        if tuned {
            return Err("--smoke fixes every knob; drop the other options".to_string());
        }
        // The CI configuration: small, fast, and pinned. CI runs this twice
        // and diffs the stdout, so everything printed must be deterministic.
        options.budget = 8;
        options.ops_per_node = 150;
    }
    if tc_testkit::Scenario::by_name(&options.scenario).is_none() {
        return Err(format!("unknown scenario: {}", options.scenario));
    }
    Ok(options)
}

/// `tc-bench hunt`: the CLI face of the pathology hunter. Prints the
/// deterministic outcome line (CI diffs two invocations of `--smoke`
/// against each other) and exits non-zero if the verifier caught a
/// violation — after printing the shrunk minimal repro.
fn run_hunt(options: tc_testkit::HuntOptions) {
    let outcome = tc_testkit::hunt(&options);
    println!("{outcome}");
    if outcome.failure.is_some() {
        std::process::exit(1);
    }
}

// ---------------------------------------------------------------------------
// Campaign service subcommands
// ---------------------------------------------------------------------------

/// Address the client subcommands default to, matching `serve`'s default.
const DEFAULT_SERVE_ADDR: &str = "127.0.0.1:7533";

fn serve_usage() -> &'static str {
    "usage: tc-bench serve [options]\n\n\
     Hosts the resident campaign service: submissions arrive as JSON over\n\
     HTTP, wait in a priority job queue, run on a worker pool, and stream\n\
     back as NDJSON — with a dedup result cache keyed on the full\n\
     determinism tuple, so repeated sweeps are free. Runs until a client\n\
     sends `tc-bench shutdown` (queued jobs finish first).\n\n\
     options:\n  \
     --addr HOST:PORT  bind address (default: 127.0.0.1:7533; port 0 picks one)\n  \
     --workers N       jobs simulated concurrently (default: 2)\n  \
     --cache PATH      persist the result cache here across restarts\n"
}

fn run_serve(args: &[String]) -> Result<(), String> {
    let mut options = tc_serve::ServeOptions::default();
    let mut i = 0;
    while i < args.len() {
        let arg = args[i].as_str();
        let value = |i: &mut usize| -> Result<String, String> {
            *i += 1;
            args.get(*i)
                .cloned()
                .ok_or_else(|| format!("{arg} requires a value"))
        };
        match arg {
            "--addr" => options.addr = value(&mut i)?,
            "--workers" => {
                let v = value(&mut i)?;
                options.workers = v.parse().map_err(|_| format!("bad --workers value: {v}"))?;
                if options.workers == 0 {
                    return Err("--workers must be at least 1".to_string());
                }
            }
            "--cache" => options.cache_path = Some(std::path::PathBuf::from(value(&mut i)?)),
            other => return Err(format!("unknown serve option: {other}")),
        }
        i += 1;
    }
    let workers = options.workers;
    let server = tc_serve::Server::bind(options).map_err(|e| format!("cannot bind: {e}"))?;
    if let Some(warning) = &server.cache_warning {
        eprintln!("{warning}");
    }
    let addr = server.local_addr().map_err(|e| e.to_string())?;
    eprintln!("tc-serve listening on {addr} ({workers} workers)");
    let stats = server.run().map_err(|e| format!("server error: {e}"))?;
    eprintln!(
        "drained: {} jobs completed, {} failed; {} points run, {} served from cache; \
         {} cache entries",
        stats.jobs_completed,
        stats.jobs_failed,
        stats.points_run,
        stats.points_cached,
        stats.cache_entries
    );
    Ok(())
}

fn submit_usage() -> String {
    let mut out = String::from(
        "usage: tc-bench submit <campaign> [options]\n\n\
         Expands a campaign into explicit experiment points (exactly as the\n\
         one-shot path would run them) and submits it to a running\n\
         `tc-bench serve`, streaming each run line to stdout as it lands.\n\ncampaigns:\n",
    );
    for spec in CAMPAIGNS {
        if spec.name != "table1" {
            out.push_str(&format!("  {:<14} {}\n", spec.name, spec.about));
        }
    }
    out.push_str(
        "\noptions:\n  \
         --addr HOST:PORT  service address (default: 127.0.0.1:7533)\n  \
         --priority LEVEL  queue priority: low, normal, or high (default: normal)\n  \
         --ops N           memory operations per node (campaign-specific default)\n  \
         --workload NAME   restrict figure campaigns to one workload\n  \
         --protocol NAME   keep only points of one protocol\n  \
         --faults SPEC     campaign-wide fault injection\n  \
         --runs-json PATH  also write the streamed run lines to PATH\n",
    );
    out
}

/// Expands `campaign` into the exact flattened point list the one-shot path
/// runs, applying the same filters and rejections.
fn expand_campaign(
    campaign: &str,
    workload: Option<&WorkloadProfile>,
    protocol: Option<ProtocolKind>,
) -> Result<Vec<ExperimentPoint>, String> {
    let Some(spec) = resolve_campaign(campaign) else {
        return Err(format!("unknown campaign: {campaign}"));
    };
    if spec.name == "table1" {
        return Err("table1 is a static parameter table; nothing to simulate".to_string());
    }
    if workload.is_some() && !spec.name.starts_with("fig") {
        return Err(format!(
            "--workload applies only to the figure campaigns; {} runs a fixed workload set",
            spec.name
        ));
    }
    let mut sections =
        campaign_sections(spec.name, workload).expect("campaign resolved but has no sections");
    if let Some(protocol) = protocol {
        if spec.name == "scalability" {
            return Err(
                "--protocol does not apply to scalability (its table compares protocols)"
                    .to_string(),
            );
        }
        for section in &mut sections {
            section.points.retain(|p| p.config.protocol == protocol);
        }
        sections.retain(|s| !s.points.is_empty());
        if sections.is_empty() {
            return Err("no points left after --protocol filter".to_string());
        }
    }
    Ok(sections.into_iter().flat_map(|s| s.points).collect())
}

fn run_submit(args: &[String]) -> Result<(), String> {
    let Some(campaign) = args.first().filter(|a| !a.starts_with("--")) else {
        return Err("submit needs a campaign name".to_string());
    };
    let campaign = campaign.clone();
    let mut addr = DEFAULT_SERVE_ADDR.to_string();
    let mut priority = tc_types::JobPriority::default();
    let mut ops: Option<u64> = None;
    let mut workload: Option<WorkloadProfile> = None;
    let mut protocol: Option<ProtocolKind> = None;
    let mut faults: Option<FaultSpec> = None;
    let mut runs_json: Option<String> = None;
    let mut i = 1;
    while i < args.len() {
        let arg = args[i].as_str();
        let value = |i: &mut usize| -> Result<String, String> {
            *i += 1;
            args.get(*i)
                .cloned()
                .ok_or_else(|| format!("{arg} requires a value"))
        };
        match arg {
            "--addr" => addr = value(&mut i)?,
            "--priority" => {
                let v = value(&mut i)?;
                priority = tc_types::JobPriority::parse(&v)?;
            }
            "--ops" => {
                let v = value(&mut i)?;
                ops = Some(v.parse().map_err(|_| format!("bad --ops value: {v}"))?);
            }
            "--workload" => {
                let v = value(&mut i)?;
                workload = Some(
                    WorkloadProfile::by_name(&v).ok_or_else(|| format!("unknown workload: {v}"))?,
                );
            }
            "--protocol" => {
                let v = value(&mut i)?;
                protocol = Some(
                    ProtocolKind::by_name(&v).ok_or_else(|| format!("unknown protocol: {v}"))?,
                );
            }
            "--faults" => {
                let v = value(&mut i)?;
                faults =
                    Some(FaultSpec::parse(&v).map_err(|e| format!("bad --faults value: {e}"))?);
            }
            "--runs-json" => runs_json = Some(value(&mut i)?),
            other => return Err(format!("unknown submit option: {other}")),
        }
        i += 1;
    }

    let points = expand_campaign(&campaign, workload.as_ref(), protocol)?;
    // `run_options` keys defaults off the canonical name, not an alias;
    // expand_campaign already proved the campaign resolves.
    let spec_name = resolve_campaign(&campaign)
        .expect("campaign resolved above")
        .name;
    let options = run_options(
        spec_name,
        &CliOptions {
            ops,
            threads: 1,
            workload,
            protocol,
            faults,
            json_path: None,
            runs_json_path: None,
            record_path: None,
            serial_baseline: false,
            shards: None,
        },
    );
    let submission = tc_serve::Submission {
        priority,
        options,
        points,
    };
    eprintln!(
        "submitting {} points to {addr} (priority {})",
        submission.points.len(),
        priority.name()
    );
    let mut captured = String::new();
    let outcome = tc_serve::submit(&addr, &submission, |line| {
        println!("{line}");
        if runs_json.is_some() {
            captured.push_str(line);
            captured.push('\n');
        }
    })
    .map_err(|e| e.to_string())?;
    if let Some(path) = &runs_json {
        std::fs::write(path, captured).map_err(|e| format!("cannot write {path}: {e}"))?;
        eprintln!("wrote {path}");
    }
    eprintln!(
        "{}: {} points — {} run, {} served from cache",
        outcome.job, outcome.points, outcome.ran, outcome.cache_hits
    );
    Ok(())
}

/// Parses the lone `--addr` option the status/shutdown subcommands take.
fn parse_addr_only(subcommand: &str, args: &[String]) -> Result<String, String> {
    let mut addr = DEFAULT_SERVE_ADDR.to_string();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--addr" => {
                i += 1;
                addr = args
                    .get(i)
                    .cloned()
                    .ok_or_else(|| "--addr requires a value".to_string())?;
            }
            other => return Err(format!("unknown {subcommand} option: {other}")),
        }
        i += 1;
    }
    Ok(addr)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let campaign_name = match args.first().map(String::as_str) {
        None | Some("help") | Some("--help") | Some("-h") => {
            print!("{}", usage());
            return;
        }
        Some("run-one") => {
            match parse_run_one(&args[1..]) {
                Ok(options) => run_one(options),
                Err(message) => {
                    eprintln!("{message}\n\n{}", run_one_usage());
                    std::process::exit(2);
                }
            }
            return;
        }
        Some("hunt") => {
            if args.get(1).map(String::as_str) == Some("--help") {
                print!("{}", hunt_usage());
                return;
            }
            match parse_hunt(&args[1..]) {
                Ok(options) => run_hunt(options),
                Err(message) => {
                    eprintln!("{message}\n\n{}", hunt_usage());
                    std::process::exit(2);
                }
            }
            return;
        }
        Some("serve") => {
            if args.get(1).map(String::as_str) == Some("--help") {
                print!("{}", serve_usage());
                return;
            }
            if let Err(message) = run_serve(&args[1..]) {
                eprintln!("{message}\n\n{}", serve_usage());
                std::process::exit(2);
            }
            return;
        }
        Some("submit") => {
            if args.get(1).map(String::as_str) == Some("--help") || args.len() == 1 {
                print!("{}", submit_usage());
                return;
            }
            if let Err(message) = run_submit(&args[1..]) {
                eprintln!("submit failed: {message}");
                std::process::exit(1);
            }
            return;
        }
        Some("status") => {
            match parse_addr_only("status", &args[1..]).and_then(|addr| {
                tc_serve::status(&addr).map_err(|e| format!("cannot reach {addr}: {e}"))
            }) {
                Ok(page) => print!("{page}"),
                Err(message) => {
                    eprintln!("{message}");
                    std::process::exit(1);
                }
            }
            return;
        }
        Some("shutdown") => {
            match parse_addr_only("shutdown", &args[1..]).and_then(|addr| {
                tc_serve::shutdown(&addr)
                    .map(|()| addr.clone())
                    .map_err(|e| format!("cannot reach {addr}: {e}"))
            }) {
                Ok(addr) => eprintln!("service at {addr} is draining"),
                Err(message) => {
                    eprintln!("{message}");
                    std::process::exit(1);
                }
            }
            return;
        }
        Some("list") => {
            println!("available campaigns:");
            for spec in CAMPAIGNS {
                println!("  {:<14} {}", spec.name, spec.about);
            }
            return;
        }
        Some(name) => name.to_string(),
    };
    let Some(spec) = resolve_campaign(&campaign_name) else {
        eprintln!("unknown campaign: {campaign_name}\n\n{}", usage());
        std::process::exit(2);
    };
    let cli = match parse_options(&args[1..]) {
        Ok(cli) => cli,
        Err(message) => {
            eprintln!("{message}\n\n{}", usage());
            std::process::exit(2);
        }
    };

    if spec.name == "table1" {
        print!("{}", render_table1());
        return;
    }

    // Only the figure campaigns iterate workloads; rejecting --workload
    // elsewhere beats silently running all three commercial profiles.
    if cli.workload.is_some() && !spec.name.starts_with("fig") {
        eprintln!(
            "--workload applies only to the figure campaigns; {} runs a fixed workload set",
            spec.name
        );
        std::process::exit(2);
    }

    let mut sections = campaign_sections(spec.name, cli.workload.as_ref())
        .expect("campaign resolved but has no sections");
    if let Some(protocol) = cli.protocol {
        // The scalability renderer compares fixed protocol columns, so a
        // filtered run would print NaN columns; reject instead.
        if spec.name == "scalability" {
            eprintln!("--protocol does not apply to scalability (its table compares protocols)");
            std::process::exit(2);
        }
        for section in &mut sections {
            section.points.retain(|p| p.config.protocol == protocol);
        }
        sections.retain(|s| !s.points.is_empty());
        if sections.is_empty() {
            eprintln!("no points left after --protocol filter");
            std::process::exit(2);
        }
    }
    let options = run_options(spec.name, &cli);
    let all_points: Vec<ExperimentPoint> = sections.iter().flat_map(|s| s.points.clone()).collect();
    println!(
        "campaign {} ({} points, {} ops/node, {} threads)",
        spec.name,
        all_points.len(),
        options.ops_per_node,
        cli.threads
    );

    // One flattened campaign keeps every core busy across section
    // boundaries; reports are re-sliced per section for rendering.
    let report = run_campaign(all_points.clone(), options, cli.threads);

    if !traffic_classes_cover_total(&report) {
        eprintln!(
            "WARNING: per-class traffic bytes do not sum to the total; \
             a TrafficClass is missing from the breakdown"
        );
    }

    if spec.name == "sweep64" {
        finish_sweep64(all_points, &sections, &report, options, &cli);
    } else {
        let slices = section_slices(&report, &sections);
        for (section, slice) in sections.iter().zip(&slices) {
            match section.table {
                TableKind::Runtime => {
                    println!("\n{}", slice.render_runtime_table(&section.title));
                }
                TableKind::Traffic => {
                    println!("\n{}", slice.render_traffic_table(&section.title));
                }
                TableKind::Reissue => {
                    println!("\n{}\n{}", section.title, render_reissue_table(slice));
                }
                TableKind::Fault => {
                    println!("\n{}\n{}", section.title, render_fault_table(slice));
                }
                TableKind::Scalability | TableKind::Sweep => {}
            }
        }
        if sections.iter().any(|s| s.table == TableKind::Scalability) {
            let rows: Vec<(usize, CampaignReport)> = SCALABILITY_NODE_COUNTS
                .iter()
                .copied()
                .zip(slices.iter().cloned())
                .collect();
            println!("\n{}", render_scalability_table(&rows));
        }
        if !spec.paper_note.is_empty() {
            println!("\n{}", spec.paper_note);
        }
    }

    eprintln!(
        "campaign wall-clock: {:.1} s across {} threads",
        report.wall_seconds, report.threads
    );
    if let Some(path) = &cli.json_path {
        std::fs::write(path, report.to_json()).expect("write campaign JSON");
        eprintln!("wrote {path}");
    }
    if let Some(path) = &cli.runs_json_path {
        // One line per run in submission order — byte-identical to what the
        // campaign service streams for the same points (pinned by CI).
        let mut out = String::new();
        for run in &report.runs {
            out.push_str(&tc_system::run_to_json(&run.label, &run.report));
            out.push('\n');
        }
        std::fs::write(path, out).expect("write runs NDJSON");
        eprintln!("wrote {path}");
    }
    if let Err((label, violation)) = report.verified() {
        eprintln!("VERIFICATION FAILURE in {label}: {violation}");
        std::process::exit(1);
    }
}

/// Sweep64 epilogue: the scale tables, the optional serial determinism
/// baseline (re-running `all_points` with one thread), and the
/// `BENCH_engine.json` wall-clock recording.
fn finish_sweep64(
    all_points: Vec<ExperimentPoint>,
    sections: &[Section],
    parallel: &CampaignReport,
    options: RunOptions,
    cli: &CliOptions,
) {
    println!("\n{}", parallel.render_runtime_table(&sections[0].title));
    println!(
        "\n{}",
        parallel.render_traffic_table("Traffic (bytes/miss)")
    );
    println!(
        "\n{}",
        parallel.render_miss_latency_table("Miss latency summary")
    );

    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    // Speedup honesty: on a host with fewer cores than workers the wall-clock
    // ratios measure oversubscription, not the engine. Warn instead of
    // letting a sub-1.0 "speedup" read as a regression.
    if host_cores < parallel.threads {
        eprintln!(
            "WARNING: host has {host_cores} core(s) but the campaign ran {} threads; \
             wall-clock speedup figures measure oversubscription, not the engine",
            parallel.threads
        );
    }
    if let Some(shards) = cli.shards {
        if (shards as usize) > host_cores {
            eprintln!(
                "WARNING: host has {host_cores} core(s) but --shards {shards} was requested; \
                 shard speedup figures measure oversubscription, not the engine"
            );
        }
    }

    // Single-run shard scaling: the reference point (the campaign's first)
    // at shards(1) vs shards(N), timed, with the shard-count-invariance
    // contract checked on the way.
    let reference = all_points
        .first()
        .cloned()
        .expect("sweep64 has at least one point");
    let mut shard_walls: Option<(u32, f64, f64)> = None;
    if let Some(shards) = cli.shards {
        eprintln!(
            "shard scaling: reference point {} at shards(1) vs shards({shards}) ...",
            reference.label
        );
        let time_at = |n: u32| {
            let mut system = System::build(&reference.config, &reference.workload);
            let start = std::time::Instant::now();
            let report = system.run(options.with_shards(n));
            (report, start.elapsed().as_secs_f64())
        };
        let (one, wall_one) = time_at(1);
        let (many, wall_many) = time_at(shards);
        assert_eq!(
            one.determinism_view(),
            many.determinism_view(),
            "shards(1) and shards({shards}) must produce bit-identical determinism views"
        );
        println!(
            "\nshard determinism check ok: shards(1) and shards({shards}) reports are \
             bit-identical (windows {}, lookahead {} ns, sync stalls {})",
            many.engine.sharding.windows,
            many.engine.sharding.lookahead_ns,
            many.engine.sharding.sync_stalls
        );
        println!(
            "shard wall-clock: {wall_one:.1} s at shards(1) vs {wall_many:.1} s at \
             shards({shards}) ({:.2}x)",
            wall_one / wall_many
        );
        shard_walls = Some((shards, wall_one, wall_many));
    }

    let mut serial_wall: Option<f64> = None;
    if cli.serial_baseline {
        eprintln!("serial baseline: re-running the campaign with 1 thread ...");
        let serial = run_campaign(all_points, options, 1);
        assert_eq!(
            serial.runs, parallel.runs,
            "threads(1) and threads(N) must produce bit-identical reports"
        );
        println!(
            "\ndeterminism check ok: {} serial reports are bit-identical to the threaded run",
            serial.runs.len()
        );
        println!(
            "wall-clock: {:.1} s serial vs {:.1} s with {} threads ({:.2}x)",
            serial.wall_seconds,
            parallel.wall_seconds,
            parallel.threads,
            serial.wall_seconds / parallel.wall_seconds
        );
        serial_wall = Some(serial.wall_seconds);
    }

    if let Some(path) = &cli.record_path {
        // The largest single-point line-state working set of the sweep (the
        // per-point figure is deterministic; the max names the worst point).
        let peak_state_bytes = parallel
            .reports()
            .map(|r| r.engine.state.state_bytes)
            .max()
            .unwrap_or(0);
        let mut fields = vec![
            (
                "sweep64_campaign_points".to_string(),
                parallel.runs.len().to_string(),
            ),
            (
                "sweep64_campaign_ops_per_node".to_string(),
                options.ops_per_node.to_string(),
            ),
            ("sweep64_threads".to_string(), parallel.threads.to_string()),
            (
                "sweep64_wall_s_parallel".to_string(),
                format!("{:.3}", parallel.wall_seconds),
            ),
            ("sweep64_host_cores".to_string(), host_cores.to_string()),
            (
                "sweep64_peak_state_bytes".to_string(),
                peak_state_bytes.to_string(),
            ),
        ];
        if let Some(serial) = serial_wall {
            fields.push(("sweep64_wall_s_serial".to_string(), format!("{serial:.3}")));
            fields.push((
                "sweep64_parallel_speedup".to_string(),
                format!("{:.3}", serial / parallel.wall_seconds),
            ));
        }
        if let Some((shards, wall_one, wall_many)) = shard_walls {
            fields.push(("sweep64_shards".to_string(), shards.to_string()));
            fields.push((
                "sweep64_wall_s_shard1".to_string(),
                format!("{wall_one:.3}"),
            ));
            fields.push((
                "sweep64_wall_s_sharded".to_string(),
                format!("{wall_many:.3}"),
            ));
            fields.push((
                "sweep64_shard_speedup".to_string(),
                format!("{:.3}", wall_one / wall_many),
            ));
        }
        merge_bench_fields(path, &fields).expect("record sweep64 wall-clock");
        eprintln!("recorded sweep64 wall-clock fields in {path}");
    }
}
