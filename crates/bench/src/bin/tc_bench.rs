//! `tc-bench` — the one experiment CLI.
//!
//! Resolves a named campaign from the experiment catalogs and runs it
//! through the multi-threaded campaign driver:
//!
//! ```text
//! tc-bench list
//! tc-bench table2
//! tc-bench fig5-runtime --ops 12000 --threads 8
//! tc-bench fig4-traffic --workload oltp --json /tmp/fig4b.json
//! tc-bench sweep64 --ops 20000 --threads 8 --serial-baseline --record BENCH_engine.json
//! ```
//!
//! Replaces the eight per-artifact binaries (`table1`, `table2`,
//! `fig4_runtime`, `fig4_traffic`, `fig5_runtime`, `fig5_traffic`,
//! `scalability`, and `engine_throughput --sweep64`); the retired names
//! still resolve as campaign aliases.

use tc_bench::{
    campaign_sections, merge_bench_fields, render_fault_table, render_reissue_table,
    render_scalability_table, render_table1, resolve_campaign, traffic_classes_cover_total,
    Section, TableKind, CAMPAIGNS, SCALABILITY_NODE_COUNTS,
};
use tc_sim::{JournalRecord, RunJournal};
use tc_system::campaign::{Campaign, CampaignReport};
use tc_system::experiment::{ExperimentPoint, SWEEP64_OPS_PER_NODE};
use tc_system::{RunOptions, System};
use tc_types::{FaultSpec, ProtocolKind, SystemConfig};
use tc_workloads::WorkloadProfile;

/// Parsed command-line options (everything after the campaign name).
struct CliOptions {
    ops: Option<u64>,
    threads: usize,
    workload: Option<WorkloadProfile>,
    protocol: Option<ProtocolKind>,
    faults: Option<FaultSpec>,
    json_path: Option<String>,
    record_path: Option<String>,
    serial_baseline: bool,
}

fn usage() -> String {
    let mut out = String::from("usage: tc-bench <campaign> [options]\n\ncampaigns:\n");
    for spec in CAMPAIGNS {
        out.push_str(&format!("  {:<14} {}\n", spec.name, spec.about));
    }
    out.push_str(
        "  run-one        one point run directly on the engine, with checkpoint/resume \
         (see `tc-bench run-one --help`... run with no args for its usage)\n",
    );
    out.push_str(
        "  hunt           budgeted adversarial-schedule search for persistent-request \
         pathologies (see `tc-bench hunt --help`)\n",
    );
    out.push_str(
        "\noptions:\n  \
         --ops N             memory operations per node (campaign-specific default)\n  \
         --threads N         campaign worker threads (default: all cores)\n  \
         --workload NAME     restrict figure campaigns to one workload\n  \
         --protocol NAME     keep only points of one protocol\n  \
         --faults SPEC       inject faults, e.g. drop=0.01,dup=0.005,reorder=4,link=2-5@1000..5000\n                      (points carrying their own spec, e.g. faultsweep's, keep it)\n  \
         --json PATH         write the campaign report as JSON\n  \
         --record PATH       (sweep64) merge wall-clock fields into a BENCH_engine.json-style file\n  \
         --serial-baseline   (sweep64) also run with one thread, verify bit-identical reports,\n                      and record the parallel speedup\n",
    );
    out
}

fn parse_options(args: &[String]) -> Result<CliOptions, String> {
    let mut options = CliOptions {
        ops: None,
        threads: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        workload: None,
        protocol: None,
        faults: None,
        json_path: None,
        record_path: None,
        serial_baseline: false,
    };
    let mut i = 0;
    while i < args.len() {
        let arg = args[i].as_str();
        let value = |i: &mut usize| -> Result<String, String> {
            *i += 1;
            args.get(*i)
                .cloned()
                .ok_or_else(|| format!("{arg} requires a value"))
        };
        match arg {
            "--ops" => {
                let v = value(&mut i)?;
                options.ops = Some(v.parse().map_err(|_| format!("bad --ops value: {v}"))?);
            }
            "--threads" => {
                let v = value(&mut i)?;
                options.threads = v.parse().map_err(|_| format!("bad --threads value: {v}"))?;
                if options.threads == 0 {
                    return Err("--threads must be at least 1".to_string());
                }
            }
            "--workload" => {
                let v = value(&mut i)?;
                options.workload = Some(
                    WorkloadProfile::by_name(&v).ok_or_else(|| format!("unknown workload: {v}"))?,
                );
            }
            "--protocol" => {
                let v = value(&mut i)?;
                options.protocol = Some(
                    ProtocolKind::by_name(&v).ok_or_else(|| format!("unknown protocol: {v}"))?,
                );
            }
            "--faults" => {
                let v = value(&mut i)?;
                options.faults =
                    Some(FaultSpec::parse(&v).map_err(|e| format!("bad --faults value: {e}"))?);
            }
            "--json" => options.json_path = Some(value(&mut i)?),
            "--record" => options.record_path = Some(value(&mut i)?),
            "--serial-baseline" => options.serial_baseline = true,
            other => return Err(format!("unknown option: {other}")),
        }
        i += 1;
    }
    Ok(options)
}

/// The default per-node operation count of a campaign.
fn default_ops(campaign: &str) -> u64 {
    match campaign {
        // The 64-node points are large; mirror the retired binary's shorter
        // default so a bare `tc-bench scalability` finishes in minutes.
        "scalability" => RunOptions::standard().ops_per_node.min(6_000),
        "sweep64" => SWEEP64_OPS_PER_NODE,
        _ => RunOptions::standard().ops_per_node,
    }
}

fn run_options(campaign: &str, cli: &CliOptions) -> RunOptions {
    let mut options = if campaign == "sweep64" {
        RunOptions::sweep64()
    } else {
        RunOptions::standard()
    };
    options.ops_per_node = cli.ops.unwrap_or_else(|| default_ops(campaign));
    // Campaign-wide fault injection; a point carrying its own spec (the
    // faultsweep catalog's per-class points) overrides this at run time.
    if let Some(faults) = cli.faults {
        options.faults = faults;
    }
    options
}

/// Runs `points` as one campaign with progress on stderr.
fn run_campaign(
    points: Vec<ExperimentPoint>,
    options: RunOptions,
    threads: usize,
) -> CampaignReport {
    Campaign::new(points)
        .options(options)
        .threads(threads)
        .on_progress(|event| eprintln!("  {event}"))
        .run()
}

/// Re-slices a flattened multi-section campaign report per section.
fn section_slices(report: &CampaignReport, sections: &[Section]) -> Vec<CampaignReport> {
    let mut slices = Vec::with_capacity(sections.len());
    let mut offset = 0;
    for section in sections {
        slices.push(report.slice(offset, section.points.len()));
        offset += section.points.len();
    }
    slices
}

/// Parsed `run-one` options.
struct RunOneOptions {
    protocol: ProtocolKind,
    workload: WorkloadProfile,
    nodes: usize,
    seed: u64,
    ops: u64,
    max_cycles: u64,
    faults: Option<FaultSpec>,
    checkpoint_every: Option<u64>,
    checkpoint_dir: Option<String>,
    resume: Option<String>,
    crash_after: Option<u64>,
    report_out: Option<String>,
}

fn run_one_usage() -> &'static str {
    "usage: tc-bench run-one [options]\n\n\
     Runs one experiment point directly (no campaign driver), with optional\n\
     engine checkpointing, crash simulation, and resume-from-snapshot.\n\n\
     options:\n  \
     --protocol NAME       protocol (default: tokenb)\n  \
     --workload NAME       workload profile (default: oltp)\n  \
     --nodes N             node count (default: 4)\n  \
     --seed N              seed (default: 12)\n  \
     --ops N               memory operations per node (default: 20000)\n  \
     --max-cycles N        cycle budget (default: 1000000000)\n  \
     --faults SPEC         inject faults into the fabric\n  \
     --checkpoint-every N  seal a snapshot every N delivered events\n  \
     --checkpoint-dir DIR  write snap-<events>.tcsnap + journal.tcj into DIR\n  \
     --resume FILE         restore FILE and run to completion instead of starting fresh\n  \
     --crash-after K       exit(42) right after sealing the K-th checkpoint (CI crash gate)\n  \
     --report-out PATH     write the final report (deterministic debug form) to PATH\n"
}

fn parse_run_one(args: &[String]) -> Result<RunOneOptions, String> {
    let mut options = RunOneOptions {
        protocol: ProtocolKind::TokenB,
        workload: WorkloadProfile::oltp(),
        nodes: 4,
        seed: 12,
        ops: 20_000,
        max_cycles: 1_000_000_000,
        faults: None,
        checkpoint_every: None,
        checkpoint_dir: None,
        resume: None,
        crash_after: None,
        report_out: None,
    };
    let mut i = 0;
    while i < args.len() {
        let arg = args[i].as_str();
        let value = |i: &mut usize| -> Result<String, String> {
            *i += 1;
            args.get(*i)
                .cloned()
                .ok_or_else(|| format!("{arg} requires a value"))
        };
        let parse_u64 = |v: String| -> Result<u64, String> {
            v.parse().map_err(|_| format!("bad {arg} value: {v}"))
        };
        match arg {
            "--protocol" => {
                let v = value(&mut i)?;
                options.protocol =
                    ProtocolKind::by_name(&v).ok_or_else(|| format!("unknown protocol: {v}"))?;
            }
            "--workload" => {
                let v = value(&mut i)?;
                options.workload =
                    WorkloadProfile::by_name(&v).ok_or_else(|| format!("unknown workload: {v}"))?;
            }
            "--nodes" => options.nodes = parse_u64(value(&mut i)?)? as usize,
            "--seed" => options.seed = parse_u64(value(&mut i)?)?,
            "--ops" => options.ops = parse_u64(value(&mut i)?)?,
            "--max-cycles" => options.max_cycles = parse_u64(value(&mut i)?)?,
            "--faults" => {
                let v = value(&mut i)?;
                options.faults =
                    Some(FaultSpec::parse(&v).map_err(|e| format!("bad --faults value: {e}"))?);
            }
            "--checkpoint-every" => options.checkpoint_every = Some(parse_u64(value(&mut i)?)?),
            "--checkpoint-dir" => options.checkpoint_dir = Some(value(&mut i)?),
            "--resume" => options.resume = Some(value(&mut i)?),
            "--crash-after" => options.crash_after = Some(parse_u64(value(&mut i)?)?),
            "--report-out" => options.report_out = Some(value(&mut i)?),
            other => return Err(format!("unknown run-one option: {other}")),
        }
        i += 1;
    }
    if options.checkpoint_every.is_some() && options.checkpoint_dir.is_none() {
        return Err("--checkpoint-every requires --checkpoint-dir".to_string());
    }
    if options.crash_after.is_some() && options.checkpoint_every.is_none() {
        return Err("--crash-after requires --checkpoint-every".to_string());
    }
    Ok(options)
}

/// `tc-bench run-one`: one point, run directly on the engine so snapshots
/// can be cut, crashed on, and resumed — the CLI face of the snapshot
/// plane. Writes `snap-<events>.tcsnap` plus an append-only `journal.tcj`
/// (both torn-tail tolerant) into the checkpoint directory.
fn run_one(cli: RunOneOptions) {
    let config = SystemConfig::isca03_default()
        .with_nodes(cli.nodes)
        .with_protocol(cli.protocol)
        .with_seed(cli.seed);
    let mut run_options = RunOptions {
        ops_per_node: cli.ops,
        max_cycles: cli.max_cycles,
        ..RunOptions::default()
    };
    if let Some(faults) = cli.faults {
        run_options.faults = faults;
    }
    if let Some(every) = cli.checkpoint_every {
        run_options = run_options.with_checkpoint_every(every);
    }

    let mut system = System::build(&config, &cli.workload);

    // The checkpoint sink: seal each snapshot to its own file and keep the
    // journal current, so a crash at any instant leaves a resumable trail.
    let dir = cli.checkpoint_dir.clone();
    if let Some(dir) = &dir {
        std::fs::create_dir_all(dir).expect("create checkpoint dir");
    }
    let mut journal = match &dir {
        Some(dir) => match std::fs::read(format!("{dir}/journal.tcj")) {
            Ok(bytes) => {
                let (journal, torn) = RunJournal::load(&bytes);
                if torn {
                    eprintln!(
                        "journal.tcj has a torn tail (crashed run); {} intact records kept",
                        journal.records().len()
                    );
                }
                journal
            }
            Err(_) => RunJournal::new(),
        },
        None => RunJournal::new(),
    };
    let crash_after = cli.crash_after;
    let mut checkpoints_sealed: u64 = 0;
    let mut sink = |events: u64, bytes: &[u8]| {
        let Some(dir) = &dir else { return };
        let path = format!("{dir}/snap-{events}.tcsnap");
        std::fs::write(&path, bytes).expect("write snapshot");
        journal.append(JournalRecord::Checkpoint {
            events_delivered: events,
            // The snapshot is cut between events; the journal's cycle is
            // informational, so the event count doubles as its stamp.
            cycle: events,
        });
        std::fs::write(format!("{dir}/journal.tcj"), journal.as_bytes()).expect("write journal");
        eprintln!("checkpoint at event {events}: {path}");
        checkpoints_sealed += 1;
        if crash_after == Some(checkpoints_sealed) {
            eprintln!("simulated crash after {checkpoints_sealed} checkpoint(s)");
            std::process::exit(42);
        }
    };

    let report = if let Some(snap_path) = &cli.resume {
        let bytes = std::fs::read(snap_path)
            .unwrap_or_else(|e| panic!("cannot read snapshot {snap_path}: {e}"));
        let progress = system
            .restore(&run_options, &bytes)
            .unwrap_or_else(|e| panic!("cannot restore {snap_path}: {e}"));
        eprintln!(
            "restored {snap_path} at event {}",
            system.events_delivered()
        );
        system.resume_with_checkpoints(run_options, progress, &mut sink)
    } else {
        system.run_with_checkpoints(run_options, &mut sink)
    };

    if let Some(dir) = &dir {
        journal.append(JournalRecord::End {
            events_delivered: system.events_delivered(),
            cycle: report.runtime_cycles,
        });
        std::fs::write(format!("{dir}/journal.tcj"), journal.as_bytes()).expect("write journal");
    }

    println!("{report}");
    println!("events_delivered: {}", system.events_delivered());
    if let Some(path) = &cli.report_out {
        std::fs::write(path, format!("{report:#?}\n")).expect("write report");
        eprintln!("wrote {path}");
    }
    if let Err(violation) = report.verified() {
        eprintln!("VERIFICATION FAILURE: {violation}");
        std::process::exit(1);
    }
}

fn hunt_usage() -> &'static str {
    "usage: tc-bench hunt [options]\n\n\
     Budgeted adversarial-schedule search: random probes over the\n\
     AdversarySpec knobs, then greedy mutation of the worst schedule found,\n\
     scored by the pathology objective (worst/p99 miss latency, reissue and\n\
     persistent-request pressure, completion skew). Deterministic in every\n\
     option: the same invocation always reports the same outcome. Any\n\
     verifier violation is shrunk to a minimal replay recipe and fails the\n\
     command.\n\n\
     options:\n  \
     --protocol NAME  protocol to attack (default: tokenb)\n  \
     --scenario NAME  conformance scenario to perturb (default: hot_block_contention)\n  \
     --seed N         workload + probe seed (default: 44382)\n  \
     --budget N       adversarial evaluations to spend (default: 24)\n  \
     --ops N          memory operations per node per evaluation (default: 200)\n  \
     --smoke          fixed CI configuration (seed 44382, budget 8, ops 150);\n                   rejects combining with the knobs above\n"
}

fn parse_hunt(args: &[String]) -> Result<tc_testkit::HuntOptions, String> {
    let mut options = tc_testkit::HuntOptions::default();
    let mut smoke = false;
    let mut tuned = false;
    let mut i = 0;
    while i < args.len() {
        let arg = args[i].as_str();
        let value = |i: &mut usize| -> Result<String, String> {
            *i += 1;
            args.get(*i)
                .cloned()
                .ok_or_else(|| format!("{arg} requires a value"))
        };
        match arg {
            "--protocol" => {
                let v = value(&mut i)?;
                options.protocol =
                    ProtocolKind::by_name(&v).ok_or_else(|| format!("unknown protocol: {v}"))?;
                tuned = true;
            }
            "--scenario" => {
                options.scenario = value(&mut i)?;
                tuned = true;
            }
            "--seed" => {
                let v = value(&mut i)?;
                options.seed = v.parse().map_err(|_| format!("bad --seed value: {v}"))?;
                tuned = true;
            }
            "--budget" => {
                let v = value(&mut i)?;
                options.budget = v.parse().map_err(|_| format!("bad --budget value: {v}"))?;
                if options.budget == 0 {
                    return Err("--budget must be at least 1".to_string());
                }
                tuned = true;
            }
            "--ops" => {
                let v = value(&mut i)?;
                options.ops_per_node = v.parse().map_err(|_| format!("bad --ops value: {v}"))?;
                tuned = true;
            }
            "--smoke" => smoke = true,
            other => return Err(format!("unknown hunt option: {other}")),
        }
        i += 1;
    }
    if smoke {
        if tuned {
            return Err("--smoke fixes every knob; drop the other options".to_string());
        }
        // The CI configuration: small, fast, and pinned. CI runs this twice
        // and diffs the stdout, so everything printed must be deterministic.
        options.budget = 8;
        options.ops_per_node = 150;
    }
    if tc_testkit::Scenario::by_name(&options.scenario).is_none() {
        return Err(format!("unknown scenario: {}", options.scenario));
    }
    Ok(options)
}

/// `tc-bench hunt`: the CLI face of the pathology hunter. Prints the
/// deterministic outcome line (CI diffs two invocations of `--smoke`
/// against each other) and exits non-zero if the verifier caught a
/// violation — after printing the shrunk minimal repro.
fn run_hunt(options: tc_testkit::HuntOptions) {
    let outcome = tc_testkit::hunt(&options);
    println!("{outcome}");
    if outcome.failure.is_some() {
        std::process::exit(1);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let campaign_name = match args.first().map(String::as_str) {
        None | Some("help") | Some("--help") | Some("-h") => {
            print!("{}", usage());
            return;
        }
        Some("run-one") => {
            match parse_run_one(&args[1..]) {
                Ok(options) => run_one(options),
                Err(message) => {
                    eprintln!("{message}\n\n{}", run_one_usage());
                    std::process::exit(2);
                }
            }
            return;
        }
        Some("hunt") => {
            if args.get(1).map(String::as_str) == Some("--help") {
                print!("{}", hunt_usage());
                return;
            }
            match parse_hunt(&args[1..]) {
                Ok(options) => run_hunt(options),
                Err(message) => {
                    eprintln!("{message}\n\n{}", hunt_usage());
                    std::process::exit(2);
                }
            }
            return;
        }
        Some("list") => {
            println!("available campaigns:");
            for spec in CAMPAIGNS {
                println!("  {:<14} {}", spec.name, spec.about);
            }
            return;
        }
        Some(name) => name.to_string(),
    };
    let Some(spec) = resolve_campaign(&campaign_name) else {
        eprintln!("unknown campaign: {campaign_name}\n\n{}", usage());
        std::process::exit(2);
    };
    let cli = match parse_options(&args[1..]) {
        Ok(cli) => cli,
        Err(message) => {
            eprintln!("{message}\n\n{}", usage());
            std::process::exit(2);
        }
    };

    if spec.name == "table1" {
        print!("{}", render_table1());
        return;
    }

    // Only the figure campaigns iterate workloads; rejecting --workload
    // elsewhere beats silently running all three commercial profiles.
    if cli.workload.is_some() && !spec.name.starts_with("fig") {
        eprintln!(
            "--workload applies only to the figure campaigns; {} runs a fixed workload set",
            spec.name
        );
        std::process::exit(2);
    }

    let mut sections = campaign_sections(spec.name, cli.workload.as_ref())
        .expect("campaign resolved but has no sections");
    if let Some(protocol) = cli.protocol {
        // The scalability renderer compares fixed protocol columns, so a
        // filtered run would print NaN columns; reject instead.
        if spec.name == "scalability" {
            eprintln!("--protocol does not apply to scalability (its table compares protocols)");
            std::process::exit(2);
        }
        for section in &mut sections {
            section.points.retain(|p| p.config.protocol == protocol);
        }
        sections.retain(|s| !s.points.is_empty());
        if sections.is_empty() {
            eprintln!("no points left after --protocol filter");
            std::process::exit(2);
        }
    }
    let options = run_options(spec.name, &cli);
    let all_points: Vec<ExperimentPoint> = sections.iter().flat_map(|s| s.points.clone()).collect();
    println!(
        "campaign {} ({} points, {} ops/node, {} threads)",
        spec.name,
        all_points.len(),
        options.ops_per_node,
        cli.threads
    );

    // One flattened campaign keeps every core busy across section
    // boundaries; reports are re-sliced per section for rendering.
    let report = run_campaign(all_points.clone(), options, cli.threads);

    if !traffic_classes_cover_total(&report) {
        eprintln!(
            "WARNING: per-class traffic bytes do not sum to the total; \
             a TrafficClass is missing from the breakdown"
        );
    }

    if spec.name == "sweep64" {
        finish_sweep64(all_points, &sections, &report, options, &cli);
    } else {
        let slices = section_slices(&report, &sections);
        for (section, slice) in sections.iter().zip(&slices) {
            match section.table {
                TableKind::Runtime => {
                    println!("\n{}", slice.render_runtime_table(&section.title));
                }
                TableKind::Traffic => {
                    println!("\n{}", slice.render_traffic_table(&section.title));
                }
                TableKind::Reissue => {
                    println!("\n{}\n{}", section.title, render_reissue_table(slice));
                }
                TableKind::Fault => {
                    println!("\n{}\n{}", section.title, render_fault_table(slice));
                }
                TableKind::Scalability | TableKind::Sweep => {}
            }
        }
        if sections.iter().any(|s| s.table == TableKind::Scalability) {
            let rows: Vec<(usize, CampaignReport)> = SCALABILITY_NODE_COUNTS
                .iter()
                .copied()
                .zip(slices.iter().cloned())
                .collect();
            println!("\n{}", render_scalability_table(&rows));
        }
        if !spec.paper_note.is_empty() {
            println!("\n{}", spec.paper_note);
        }
    }

    eprintln!(
        "campaign wall-clock: {:.1} s across {} threads",
        report.wall_seconds, report.threads
    );
    if let Some(path) = &cli.json_path {
        std::fs::write(path, report.to_json()).expect("write campaign JSON");
        eprintln!("wrote {path}");
    }
    if let Err((label, violation)) = report.verified() {
        eprintln!("VERIFICATION FAILURE in {label}: {violation}");
        std::process::exit(1);
    }
}

/// Sweep64 epilogue: the scale tables, the optional serial determinism
/// baseline (re-running `all_points` with one thread), and the
/// `BENCH_engine.json` wall-clock recording.
fn finish_sweep64(
    all_points: Vec<ExperimentPoint>,
    sections: &[Section],
    parallel: &CampaignReport,
    options: RunOptions,
    cli: &CliOptions,
) {
    println!("\n{}", parallel.render_runtime_table(&sections[0].title));
    println!(
        "\n{}",
        parallel.render_traffic_table("Traffic (bytes/miss)")
    );
    println!(
        "\n{}",
        parallel.render_miss_latency_table("Miss latency summary")
    );

    let mut serial_wall: Option<f64> = None;
    if cli.serial_baseline {
        eprintln!("serial baseline: re-running the campaign with 1 thread ...");
        let serial = run_campaign(all_points, options, 1);
        assert_eq!(
            serial.runs, parallel.runs,
            "threads(1) and threads(N) must produce bit-identical reports"
        );
        println!(
            "\ndeterminism check ok: {} serial reports are bit-identical to the threaded run",
            serial.runs.len()
        );
        println!(
            "wall-clock: {:.1} s serial vs {:.1} s with {} threads ({:.2}x)",
            serial.wall_seconds,
            parallel.wall_seconds,
            parallel.threads,
            serial.wall_seconds / parallel.wall_seconds
        );
        serial_wall = Some(serial.wall_seconds);
    }

    if let Some(path) = &cli.record_path {
        let host_cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        // The largest single-point line-state working set of the sweep (the
        // per-point figure is deterministic; the max names the worst point).
        let peak_state_bytes = parallel
            .reports()
            .map(|r| r.engine.state.state_bytes)
            .max()
            .unwrap_or(0);
        let mut fields = vec![
            (
                "sweep64_campaign_points".to_string(),
                parallel.runs.len().to_string(),
            ),
            (
                "sweep64_campaign_ops_per_node".to_string(),
                options.ops_per_node.to_string(),
            ),
            ("sweep64_threads".to_string(), parallel.threads.to_string()),
            (
                "sweep64_wall_s_parallel".to_string(),
                format!("{:.3}", parallel.wall_seconds),
            ),
            ("sweep64_host_cores".to_string(), host_cores.to_string()),
            (
                "sweep64_peak_state_bytes".to_string(),
                peak_state_bytes.to_string(),
            ),
        ];
        if let Some(serial) = serial_wall {
            fields.push(("sweep64_wall_s_serial".to_string(), format!("{serial:.3}")));
            fields.push((
                "sweep64_parallel_speedup".to_string(),
                format!("{:.3}", serial / parallel.wall_seconds),
            ));
        }
        merge_bench_fields(path, &fields).expect("record sweep64 wall-clock");
        eprintln!("recorded sweep64 wall-clock fields in {path}");
    }
}
