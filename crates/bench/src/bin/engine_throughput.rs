//! Engine throughput baseline: how many simulation events per second of
//! wall-clock time the event loop sustains.
//!
//! Unlike the figure/table binaries, this benchmark measures the *simulator*
//! rather than the simulated protocols, so future PRs that touch the hot path
//! have a recorded perf trajectory. The default configuration is fixed
//! (TokenB, OLTP, 4 nodes, 20 000 ops/node) and the result is written to
//! `BENCH_engine.json` at the workspace root.
//!
//! The first recorded measurement is kept as `baseline_events_per_sec`;
//! subsequent runs update `events_per_sec` and `speedup_vs_baseline` but
//! preserve the baseline, so the JSON always answers "how much faster than
//! the first commit is the engine now?".
//!
//! Modes beyond the default measurement:
//!
//! * `--check <path>`: regression gate. After measuring, compare against the
//!   `events_per_sec` recorded in `<path>` and exit non-zero if this run is
//!   more than `--tolerance` (default 0.30) below it. The tolerance is
//!   deliberately generous: shared CI runners and noisy-neighbour hosts
//!   swing wall-clock measurements by tens of percent, and the gate exists
//!   to catch order-of-magnitude regressions, not 5% drift. On hardware
//!   unrelated to the machine that recorded the file, gate against the
//!   seed-engine figure instead (`--check-key baseline_events_per_sec`) —
//!   an absolute same-machine number would fail forever on a slower host.
//! * `--check-state-bytes`: peak-state-bytes regression gate (next to the
//!   throughput gate). Unlike wall-clock, the line-state plane's peak byte
//!   footprint is *deterministic* — a pure function of the pinned simulation
//!   and the struct layouts — so the gate is tight: the run fails if the
//!   measured `peak_state_bytes` exceeds the figure recorded in the
//!   `--check` file by more than 10%. A failure means a change grew the
//!   simulated-state working set; re-record only for an intentional change.
//!
//! The 64-node scale measurement that used to live behind `--sweep64` is
//! now `tc-bench sweep64 --record <path>`, which runs the whole sweep
//! campaign through the threaded driver; this binary keeps any `sweep64_*`
//! fields in the output file intact when rewriting the 4-node trajectory.

use std::time::Instant;

use tc_system::{RunOptions, System};
use tc_types::{ProtocolKind, SystemConfig};
use tc_workloads::WorkloadProfile;

/// Default number of timed runs; the fastest is reported to suppress
/// scheduler and noisy-neighbour interference (the minimum of n wall-clock
/// samples converges on the true cost as n grows).
const TIMED_RUNS: usize = 7;

/// Short description of the engine configuration being measured, recorded in
/// the JSON so trajectory points are attributable to engine generations.
const ENGINE_CONFIG: &str = "calendar-queue + msg-arena + line-state plane";

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut ops_per_node: u64 = 20_000;
    let mut num_nodes: usize = 4;
    let mut out_path = "BENCH_engine.json".to_string();
    let mut check_path: Option<String> = None;
    let mut check_key = "events_per_sec".to_string();
    let mut tolerance: f64 = 0.30;
    let mut check_state_bytes = false;
    let mut runs = TIMED_RUNS;
    // Strict parsing: a flag with a missing value is a usage error, not a
    // silently-empty string (an empty `--check` path would make the
    // regression gate a no-op that still exits 0).
    let mut i = 1;
    while i < args.len() {
        let arg = args[i].as_str();
        let mut value = || -> String {
            i += 1;
            args.get(i).cloned().unwrap_or_else(|| {
                eprintln!("usage: {arg} requires a value");
                std::process::exit(2);
            })
        };
        match arg {
            "--ops" => ops_per_node = parse_or_die(arg, &value()),
            "--nodes" => num_nodes = parse_or_die(arg, &value()),
            "--runs" => runs = parse_or_die(arg, &value()),
            "--out" => out_path = value(),
            "--check" => check_path = Some(value()),
            "--check-key" => check_key = value(),
            "--check-state-bytes" => check_state_bytes = true,
            "--tolerance" => tolerance = parse_or_die(arg, &value()),
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    let check_key = format!("\"{check_key}\":");

    let config = SystemConfig::isca03_default()
        .with_nodes(num_nodes)
        .with_protocol(ProtocolKind::TokenB)
        .with_seed(12);
    let profile = WorkloadProfile::oltp();
    let options = RunOptions {
        ops_per_node,
        max_cycles: 200_000_000_000,
        ..RunOptions::default()
    };

    // Warmup run: page in the binary, warm the allocator.
    eprintln!("warmup ...");
    run_once(&config, &profile, options);

    let mut best_events_per_sec = 0.0f64;
    let mut best = (0u64, 0.0f64);
    let mut state = tc_types::LineStateStats::default();
    for i in 0..runs {
        let (events, secs, run_state) = run_once(&config, &profile, options);
        // Deterministic: identical in every run of this configuration.
        state = run_state;
        let rate = events as f64 / secs;
        eprintln!(
            "run {}/{runs}: {events} events in {secs:.3} s = {rate:.0} events/s \
             (line-state plane: {} peak entries, {} B, retired-plane est {} B)",
            i + 1,
            state.total_entries(),
            state.state_bytes,
            state.retired_bytes_est
        );
        if rate > best_events_per_sec {
            best_events_per_sec = rate;
            best = (events, secs);
        }
    }

    let check_reference = check_path.as_ref().and_then(|path| {
        std::fs::read_to_string(path)
            .ok()
            .and_then(|text| read_number(&text, &check_key))
    });
    let state_bytes_reference = check_path.as_ref().and_then(|path| {
        std::fs::read_to_string(path)
            .ok()
            .and_then(|text| read_number(&text, "\"peak_state_bytes\":"))
    });
    let previous = std::fs::read_to_string(&out_path).unwrap_or_default();
    let json = {
        let baseline =
            read_number(&previous, "\"baseline_events_per_sec\":").unwrap_or(best_events_per_sec);
        let speedup = best_events_per_sec / baseline;
        // Preserve the sweep64 campaign fields recorded by `tc-bench
        // sweep64 --record`, re-ordered below the headline fields.
        let sweep_tail: String = previous
            .lines()
            .filter(|l| l.contains("\"sweep64_"))
            .map(|l| {
                let l = l.trim_end().trim_end_matches(',');
                format!("  {},\n", l.trim_start())
            })
            .collect();
        let mut body = format!(
            "  \"benchmark\": \"engine_throughput\",\n  \"engine\": \"{ENGINE_CONFIG}\",\n  \
             \"protocol\": \"TokenB\",\n  \"workload\": \"oltp\",\n  \
             \"num_nodes\": {num_nodes},\n  \"ops_per_node\": {ops_per_node},\n  \
             \"events_delivered\": {},\n  \"wall_seconds\": {:.6},\n  \
             \"events_per_sec\": {:.0},\n  \"baseline_events_per_sec\": {:.0},\n  \
             \"speedup_vs_baseline\": {:.3},\n  \
             \"peak_state_entries\": {},\n  \"peak_state_bytes\": {},\n  \
             \"peak_state_bytes_retired_plane_est\": {},\n",
            best.0,
            best.1,
            best_events_per_sec,
            baseline,
            speedup,
            state.total_entries(),
            state.state_bytes,
            state.retired_bytes_est
        );
        body.push_str(&sweep_tail);
        let body = body.trim_end().trim_end_matches(',');
        format!("{{\n{body}\n}}\n")
    };
    std::fs::write(&out_path, &json).expect("write benchmark result");
    println!("{json}");
    eprintln!("wrote {out_path}");

    if let Some(check_path) = check_path {
        // `check_reference` was read before the write above, so checking
        // against the file just (re)written still gates on the previous
        // record rather than on this run's own result.
        match check_reference {
            Some(recorded) if recorded > 0.0 => {
                let floor = recorded * (1.0 - tolerance);
                if best_events_per_sec < floor {
                    eprintln!(
                        "REGRESSION: {best_events_per_sec:.0} events/s is more than \
                         {:.0}% below the recorded {recorded:.0} events/s \
                         ({check_key} in {check_path})",
                        tolerance * 100.0
                    );
                    std::process::exit(1);
                }
                eprintln!(
                    "check ok: {best_events_per_sec:.0} events/s >= {floor:.0} \
                     ({recorded:.0} {check_key} recorded in {check_path}, {:.0}% tolerance)",
                    tolerance * 100.0
                );
            }
            _ => {
                eprintln!("REGRESSION CHECK FAILED: no {check_key} number found in {check_path}");
                std::process::exit(1);
            }
        }
        if check_state_bytes {
            match state_bytes_reference {
                Some(recorded) if recorded > 0.0 => {
                    // Deterministic metric: tight 10% ceiling (slack only for
                    // cross-platform struct-layout differences).
                    let ceiling = recorded * 1.10;
                    if state.state_bytes as f64 > ceiling {
                        eprintln!(
                            "STATE REGRESSION: peak_state_bytes {} exceeds the recorded \
                             {recorded:.0} by more than 10% ({check_path})",
                            state.state_bytes
                        );
                        std::process::exit(1);
                    }
                    eprintln!(
                        "state check ok: peak_state_bytes {} <= {ceiling:.0} \
                         ({recorded:.0} recorded in {check_path})",
                        state.state_bytes
                    );
                }
                _ => {
                    eprintln!(
                        "STATE REGRESSION CHECK FAILED: no peak_state_bytes found in {check_path}"
                    );
                    std::process::exit(1);
                }
            }
        }
    } else if check_state_bytes {
        eprintln!("--check-state-bytes requires --check <path>");
        std::process::exit(2);
    }
}

/// Parses a flag value or exits with a usage error.
fn parse_or_die<T: std::str::FromStr>(flag: &str, value: &str) -> T {
    value.parse().unwrap_or_else(|_| {
        eprintln!("usage: {flag} got an unparseable value: {value:?}");
        std::process::exit(2);
    })
}

/// Builds a fresh system and times one run, returning (events, seconds,
/// line-state plane stats).
fn run_once(
    config: &SystemConfig,
    profile: &WorkloadProfile,
    options: RunOptions,
) -> (u64, f64, tc_types::LineStateStats) {
    let mut system = System::build(config, profile);
    let start = Instant::now();
    let report = system.run(options);
    let secs = start.elapsed().as_secs_f64();
    assert!(
        report.violations.is_empty(),
        "benchmark run must verify cleanly: {:?}",
        report.violations
    );
    (system.events_delivered(), secs, report.engine.state)
}

/// Extracts the first number after `key` from our own fixed-shape output.
/// A tiny string scan instead of a JSON dependency, per the offline build
/// environment's no-external-crates policy.
fn read_number(text: &str, key: &str) -> Option<f64> {
    let at = text.find(key)? + key.len();
    let rest = text[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}
