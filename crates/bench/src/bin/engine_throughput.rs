//! Engine throughput baseline: how many simulation events per second of
//! wall-clock time the event loop sustains.
//!
//! Unlike the figure/table binaries, this benchmark measures the *simulator*
//! rather than the simulated protocols, so future PRs that touch the hot path
//! have a recorded perf trajectory. The configuration is fixed (TokenB, OLTP,
//! 4 nodes, 20 000 ops/node by default) and the result is written to
//! `BENCH_engine.json` at the workspace root.
//!
//! The first recorded measurement is kept as `baseline_events_per_sec`;
//! subsequent runs update `events_per_sec` and `speedup_vs_baseline` but
//! preserve the baseline, so the JSON always answers "how much faster than
//! the first commit is the engine now?".

use std::time::Instant;

use tc_system::{RunOptions, System};
use tc_types::{ProtocolKind, SystemConfig};
use tc_workloads::WorkloadProfile;

/// Number of timed runs; the fastest is reported to suppress scheduler noise.
const TIMED_RUNS: usize = 5;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut ops_per_node: u64 = 20_000;
    let mut num_nodes: usize = 4;
    let mut out_path = "BENCH_engine.json".to_string();
    for window in args.windows(2) {
        match window[0].as_str() {
            "--ops" => {
                if let Ok(v) = window[1].parse() {
                    ops_per_node = v;
                }
            }
            "--nodes" => {
                if let Ok(v) = window[1].parse() {
                    num_nodes = v;
                }
            }
            "--out" => {
                out_path = window[1].clone();
            }
            _ => {}
        }
    }

    let config = SystemConfig::isca03_default()
        .with_nodes(num_nodes)
        .with_protocol(ProtocolKind::TokenB)
        .with_seed(12);
    let profile = WorkloadProfile::oltp();
    let options = RunOptions {
        ops_per_node,
        max_cycles: 1_000_000_000,
    };

    // Warmup run: page in the binary, warm the allocator.
    eprintln!("warmup ...");
    run_once(&config, &profile, options);

    let mut best_events_per_sec = 0.0f64;
    let mut best = (0u64, 0.0f64);
    for i in 0..TIMED_RUNS {
        let (events, secs) = run_once(&config, &profile, options);
        let rate = events as f64 / secs;
        eprintln!(
            "run {}/{TIMED_RUNS}: {events} events in {secs:.3} s = {rate:.0} events/s",
            i + 1
        );
        if rate > best_events_per_sec {
            best_events_per_sec = rate;
            best = (events, secs);
        }
    }

    let baseline = read_baseline(&out_path).unwrap_or(best_events_per_sec);
    let speedup = best_events_per_sec / baseline;
    let json = format!(
        "{{\n  \"benchmark\": \"engine_throughput\",\n  \"protocol\": \"TokenB\",\n  \
         \"workload\": \"oltp\",\n  \"num_nodes\": {num_nodes},\n  \
         \"ops_per_node\": {ops_per_node},\n  \"events_delivered\": {},\n  \
         \"wall_seconds\": {:.6},\n  \"events_per_sec\": {:.0},\n  \
         \"baseline_events_per_sec\": {:.0},\n  \"speedup_vs_baseline\": {:.3}\n}}\n",
        best.0, best.1, best_events_per_sec, baseline, speedup
    );
    std::fs::write(&out_path, &json).expect("write benchmark result");
    println!("{json}");
    eprintln!("wrote {out_path}");
}

/// Builds a fresh system and times one run, returning (events, seconds).
fn run_once(config: &SystemConfig, profile: &WorkloadProfile, options: RunOptions) -> (u64, f64) {
    let mut system = System::build(config, profile);
    let start = Instant::now();
    let report = system.run(options);
    let secs = start.elapsed().as_secs_f64();
    assert!(
        report.violations.is_empty(),
        "benchmark run must verify cleanly: {:?}",
        report.violations
    );
    (system.events_delivered(), secs)
}

/// Extracts `baseline_events_per_sec` from a previous result file, if any.
///
/// The file is our own fixed-shape output, so a tiny string scan is enough —
/// no JSON dependency needed in the offline build environment.
fn read_baseline(path: &str) -> Option<f64> {
    let text = std::fs::read_to_string(path).ok()?;
    let key = "\"baseline_events_per_sec\":";
    let at = text.find(key)? + key.len();
    let rest = text[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}
