//! Section 6, Question 5: can TokenB scale to an unlimited number of
//! processors? Traffic per miss of TokenB, Directory, and Hammer on the
//! uniform-sharing microbenchmark at 16, 32, and 64 nodes.

use tc_bench::{run_options_from_args, run_points};
use tc_system::experiment::scalability_points;
use tc_types::ProtocolKind;

fn main() {
    let mut options = run_options_from_args();
    // The 64-node point is large; keep the default run shorter than the
    // figure binaries unless the user asks otherwise.
    options.ops_per_node = options.ops_per_node.min(6_000);
    println!(
        "Question 5: broadcast scalability (uniform-sharing microbenchmark, {} ops/node)\n",
        options.ops_per_node
    );

    println!(
        "{:>6} {:>18} {:>18} {:>18} {:>12}",
        "nodes", "TokenB B/miss", "Directory B/miss", "Hammer B/miss", "TokenB/Dir"
    );
    for nodes in [16usize, 32, 64] {
        let rows = run_points(&scalability_points(nodes), options);
        let find = |p: ProtocolKind| {
            rows.iter()
                .find(|(label, _)| label.starts_with(p.name()))
                .map(|(_, r)| r.bytes_per_miss())
                .unwrap_or(f64::NAN)
        };
        let token = find(ProtocolKind::TokenB);
        let directory = find(ProtocolKind::Directory);
        let hammer = find(ProtocolKind::Hammer);
        println!(
            "{:>6} {:>18.1} {:>18.1} {:>18.1} {:>11.2}x",
            nodes,
            token,
            directory,
            hammer,
            token / directory
        );
    }
    println!(
        "\nPaper reports: TokenB's broadcast limits scalability — at 64 processors it uses roughly \
         twice the interconnect bandwidth of Directory (but far less than Hammer, whose \
         acknowledgement storm grows fastest). TokenB remains practical to perhaps 32-64 \
         processors when bandwidth is plentiful."
    );
}
