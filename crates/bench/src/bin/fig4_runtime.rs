//! Figure 4a: runtime of Snooping (ordered tree) vs TokenB (tree and torus),
//! with limited and unlimited link bandwidth, for each commercial workload.

use tc_bench::{print_runtime_table, run_options_from_args, run_points};
use tc_system::experiment::figure4a_points;
use tc_workloads::WorkloadProfile;

fn main() {
    let options = run_options_from_args();
    println!(
        "Figure 4a: snooping vs TokenB runtime (16 nodes, {} ops/node; smaller is better)",
        options.ops_per_node
    );
    for workload in WorkloadProfile::commercial() {
        let rows = run_points(&figure4a_points(&workload), options);
        print_runtime_table(&format!("Workload: {}", workload.name), &rows);
    }
    println!(
        "\nPaper reports (Figure 4a): with the same tree interconnect Snooping is 1-5% faster than \
         TokenB (reissues); by exploiting the unordered torus, TokenB becomes 26-65% faster than \
         Snooping-on-Tree with 3.2 GB/s links and 15-28% faster with unlimited bandwidth."
    );
}
