//! Figure 5b: interconnect traffic (bytes per miss) of TokenB vs Hammer vs
//! Directory, broken down by message class, for each commercial workload.

use tc_bench::{print_traffic_table, run_options_from_args, run_points};
use tc_system::experiment::figure5b_points;
use tc_workloads::WorkloadProfile;

fn main() {
    let options = run_options_from_args();
    println!(
        "Figure 5b: directory & Hammer vs TokenB traffic in bytes per miss (16-node torus, {} ops/node)",
        options.ops_per_node
    );
    for workload in WorkloadProfile::commercial() {
        let rows = run_points(&figure5b_points(&workload), options);
        print_traffic_table(&format!("Workload: {}", workload.name), &rows);
    }
    println!(
        "\nPaper reports (Figure 5b): Directory uses 21-25% less traffic than TokenB (both are \
         dominated by 72-byte data messages), while Hammer uses 79-90% more than TokenB because \
         every miss broadcasts probes and collects an acknowledgement from every node."
    );
}
