//! Figure 4b: interconnect traffic (bytes per miss) of TokenB vs Snooping,
//! broken down by message class, for each commercial workload.

use tc_bench::{print_traffic_table, run_options_from_args, run_points};
use tc_system::experiment::figure4b_points;
use tc_workloads::WorkloadProfile;

fn main() {
    let options = run_options_from_args();
    println!(
        "Figure 4b: snooping vs TokenB traffic in bytes per miss (16 nodes, {} ops/node)",
        options.ops_per_node
    );
    for workload in WorkloadProfile::commercial() {
        let rows = run_points(&figure4b_points(&workload), options);
        print_traffic_table(&format!("Workload: {}", workload.name), &rows);
    }
    println!(
        "\nPaper reports (Figure 4b): TokenB and Snooping use approximately the same interconnect \
         bandwidth; data responses and writebacks dominate both, with broadcast requests a modest \
         additional component for TokenB (plus a small sliver of reissued requests)."
    );
}
