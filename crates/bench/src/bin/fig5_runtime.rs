//! Figure 5a: runtime of TokenB vs Hammer vs Directory on the torus, with
//! limited/unlimited bandwidth and the perfect-directory sensitivity point,
//! for each commercial workload.

use tc_bench::{print_runtime_table, run_options_from_args, run_points};
use tc_system::experiment::figure5a_points;
use tc_workloads::WorkloadProfile;

fn main() {
    let options = run_options_from_args();
    println!(
        "Figure 5a: directory & Hammer vs TokenB runtime (16-node torus, {} ops/node; smaller is better)",
        options.ops_per_node
    );
    for workload in WorkloadProfile::commercial() {
        let rows = run_points(&figure5a_points(&workload), options);
        print_runtime_table(&format!("Workload: {}", workload.name), &rows);
    }
    println!(
        "\nPaper reports (Figure 5a): TokenB is 17-54% faster than Directory and 8-29% faster than \
         Hammer by removing the home-node indirection from cache-to-cache misses; Hammer is 7-17% \
         faster than Directory by avoiding the DRAM directory lookup; even with a perfect \
         (zero-cycle) directory, TokenB remains 6-18% faster than Directory."
    );
}
