//! Shared machinery for the `tc-bench` experiment CLI and the engine
//! throughput benchmark.
//!
//! One binary, `tc-bench`, resolves *named campaigns* — each regenerating a
//! table or figure of the paper's evaluation — from the
//! `tc_system::experiment` point catalogs and executes them through the
//! multi-threaded `tc_system::Campaign` driver:
//!
//! | campaign       | paper artifact |
//! |----------------|----------------|
//! | `table1`       | Table 1 — target system parameters |
//! | `table2`       | Table 2 — reissued / persistent request rates |
//! | `fig4-runtime` | Figure 4a — runtime, Snooping vs TokenB |
//! | `fig4-traffic` | Figure 4b — traffic, Snooping vs TokenB |
//! | `fig5-runtime` | Figure 5a — runtime, Directory & Hammer vs TokenB |
//! | `fig5-traffic` | Figure 5b — traffic, Directory & Hammer vs TokenB |
//! | `scalability`  | Section 6, Question 5 — traffic scaling to 64 processors |
//! | `sweep64`      | 64-node scale sweep, with wall-clock recording for `BENCH_engine.json` |
//! | `faultsweep`   | Robustness: every protocol under its tolerated fault classes |
//!
//! Run `tc-bench list` for the catalog. Options are shared across
//! campaigns: `--ops N` (operations per node), `--threads N` (campaign
//! worker threads), `--workload NAME` (restrict figure campaigns to one
//! workload), `--protocol NAME` (filter points), `--faults SPEC` (inject a
//! fault spec such as `drop=0.01,dup=0.005,reorder=4` into every point that
//! does not carry its own), `--json PATH` (dump the campaign report), and
//! for `sweep64` additionally `--record PATH` (merge wall-clock fields into
//! a `BENCH_engine.json`-style file) and `--serial-baseline` (also run
//! single-threaded, check bit-identical reports, and record the speedup).

#![warn(missing_docs)]

use tc_system::campaign::CampaignReport;
use tc_system::experiment::{
    figure4a_points, figure4b_points, figure5a_points, figure5b_points, scalability_points,
    table2_points, ExperimentPoint,
};
use tc_types::{ProtocolKind, SystemConfig, TrafficClass};
use tc_workloads::WorkloadProfile;

/// How one campaign section's reports are rendered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TableKind {
    /// Normalized runtime (Figures 4a / 5a).
    Runtime,
    /// Traffic breakdown in bytes per miss (Figures 4b / 5b).
    Traffic,
    /// Reissue-rate percentages (Table 2).
    Reissue,
    /// Bytes-per-miss comparison across node counts (Question 5).
    Scalability,
    /// Runtime plus traffic plus miss latency (the scale sweep).
    Sweep,
    /// Injected-fault counts and recovery statistics (the fault sweep).
    Fault,
}

/// One renderable slice of a campaign: a title plus the points it runs.
#[derive(Debug, Clone)]
pub struct Section {
    /// Section heading, e.g. `"Workload: OLTP"`.
    pub title: String,
    /// The experiment points of this section.
    pub points: Vec<ExperimentPoint>,
    /// How to render the section's reports.
    pub table: TableKind,
}

/// A named campaign in the `tc-bench` catalog.
#[derive(Debug, Clone, Copy)]
pub struct CampaignSpec {
    /// Canonical name (`tc-bench <name>`).
    pub name: &'static str,
    /// Accepted aliases (the retired per-figure binary names).
    pub aliases: &'static [&'static str],
    /// One-line description for `tc-bench list`.
    pub about: &'static str,
    /// What the paper reports for this artifact, printed after the tables.
    pub paper_note: &'static str,
}

/// The campaign catalog: every table and figure of the evaluation plus the
/// scale sweep.
pub const CAMPAIGNS: &[CampaignSpec] = &[
    CampaignSpec {
        name: "table1",
        aliases: &[],
        about: "Table 1: target system parameters (no simulation)",
        paper_note: "",
    },
    CampaignSpec {
        name: "table2",
        aliases: &[],
        about: "Table 2: TokenB reissue / persistent request rates per commercial workload",
        paper_note: "Paper reports (Table 2): Apache 95.75 / 3.25 / 0.71 / 0.29, OLTP 97.57 / \
                     1.79 / 0.43 / 0.21, SPECjbb 97.60 / 2.03 / 0.30 / 0.07, average 96.97 / \
                     2.36 / 0.48 / 0.19.",
    },
    CampaignSpec {
        name: "fig4-runtime",
        aliases: &["fig4_runtime", "fig4a"],
        about: "Figure 4a: runtime of Snooping (tree) vs TokenB (tree and torus)",
        paper_note: "Paper reports (Figure 4a): with the same tree interconnect Snooping is 1-5% \
                     faster than TokenB (reissues); by exploiting the unordered torus, TokenB \
                     becomes 26-65% faster than Snooping-on-Tree with 3.2 GB/s links and 15-28% \
                     faster with unlimited bandwidth.",
    },
    CampaignSpec {
        name: "fig4-traffic",
        aliases: &["fig4_traffic", "fig4b"],
        about: "Figure 4b: traffic (bytes/miss) of TokenB vs Snooping",
        paper_note: "Paper reports (Figure 4b): TokenB and Snooping use approximately the same \
                     interconnect bandwidth; data responses and writebacks dominate both, with \
                     broadcast requests a modest additional component for TokenB (plus a small \
                     sliver of reissued requests).",
    },
    CampaignSpec {
        name: "fig5-runtime",
        aliases: &["fig5_runtime", "fig5a"],
        about: "Figure 5a: runtime of TokenB vs Hammer vs Directory on the torus",
        paper_note: "Paper reports (Figure 5a): TokenB is 17-54% faster than Directory and 8-29% \
                     faster than Hammer by removing the home-node indirection from cache-to-cache \
                     misses; Hammer is 7-17% faster than Directory by avoiding the DRAM directory \
                     lookup; even with a perfect (zero-cycle) directory, TokenB remains 6-18% \
                     faster than Directory.",
    },
    CampaignSpec {
        name: "fig5-traffic",
        aliases: &["fig5_traffic", "fig5b"],
        about: "Figure 5b: traffic (bytes/miss) of TokenB vs Hammer vs Directory",
        paper_note: "Paper reports (Figure 5b): Directory uses 21-25% less traffic than TokenB \
                     (both are dominated by 72-byte data messages), while Hammer uses 79-90% more \
                     than TokenB because every miss broadcasts probes and collects an \
                     acknowledgement from every node.",
    },
    CampaignSpec {
        name: "scalability",
        aliases: &["question5"],
        about: "Question 5: TokenB vs Directory vs Hammer traffic at 16/32/64 nodes",
        paper_note: "Paper reports: TokenB's broadcast limits scalability — at 64 processors it \
                     uses roughly twice the interconnect bandwidth of Directory (but far less \
                     than Hammer, whose acknowledgement storm grows fastest). TokenB remains \
                     practical to perhaps 32-64 processors when bandwidth is plentiful.",
    },
    CampaignSpec {
        name: "sweep64",
        aliases: &["sweep"],
        about: "64-node scale sweep (every protocol on every legal topology, contended OLTP)",
        paper_note: "",
    },
    CampaignSpec {
        name: "faultsweep",
        aliases: &["faults"],
        about: "Robustness: each protocol under every fault class it contracts to survive",
        paper_note: "The paper's decoupling argument (Section 3.4): transient requests are \
                     performance hints, so TokenB tolerates a fabric that drops, duplicates, \
                     delays, and reorders them — reissue timeouts and persistent requests \
                     restore liveness while token counting keeps safety. The ordered baselines \
                     tolerate only the classes their ordering assumptions survive.",
    },
];

/// Resolves a campaign by name or alias, ignoring case and treating `-`/`_`
/// as equivalent.
pub fn resolve_campaign(name: &str) -> Option<&'static CampaignSpec> {
    let normalize = |s: &str| s.replace(['-', '_'], "").to_ascii_lowercase();
    let wanted = normalize(name);
    CAMPAIGNS.iter().find(|spec| {
        normalize(spec.name) == wanted || spec.aliases.iter().any(|a| normalize(a) == wanted)
    })
}

/// The commercial workloads a figure campaign iterates, or just the one the
/// user asked for.
fn figure_workloads(only: Option<&WorkloadProfile>) -> Vec<WorkloadProfile> {
    match only {
        Some(workload) => vec![workload.clone()],
        None => WorkloadProfile::commercial(),
    }
}

/// The node counts of the scalability campaign.
pub const SCALABILITY_NODE_COUNTS: [usize; 3] = [16, 32, 64];

/// Builds the sections of a simulation campaign (everything except
/// `table1`, which prints a static parameter table). Returns `None` for
/// unknown names and for `table1`.
pub fn campaign_sections(name: &str, workload: Option<&WorkloadProfile>) -> Option<Vec<Section>> {
    let spec = resolve_campaign(name)?;
    let sections = match spec.name {
        "table2" => vec![Section {
            title: "Table 2: overhead due to reissued requests (TokenB, 16-node torus)".to_string(),
            points: table2_points(),
            table: TableKind::Reissue,
        }],
        "fig4-runtime" => figure_workloads(workload)
            .into_iter()
            .map(|w| Section {
                title: format!("Workload: {}", w.name),
                points: figure4a_points(&w),
                table: TableKind::Runtime,
            })
            .collect(),
        "fig4-traffic" => figure_workloads(workload)
            .into_iter()
            .map(|w| Section {
                title: format!("Workload: {}", w.name),
                points: figure4b_points(&w),
                table: TableKind::Traffic,
            })
            .collect(),
        "fig5-runtime" => figure_workloads(workload)
            .into_iter()
            .map(|w| Section {
                title: format!("Workload: {}", w.name),
                points: figure5a_points(&w),
                table: TableKind::Runtime,
            })
            .collect(),
        "fig5-traffic" => figure_workloads(workload)
            .into_iter()
            .map(|w| Section {
                title: format!("Workload: {}", w.name),
                points: figure5b_points(&w),
                table: TableKind::Traffic,
            })
            .collect(),
        "scalability" => SCALABILITY_NODE_COUNTS
            .iter()
            .map(|&nodes| Section {
                title: format!("{nodes} nodes"),
                points: scalability_points(nodes),
                table: TableKind::Scalability,
            })
            .collect(),
        "sweep64" => vec![Section {
            title: "64-node scale sweep (contended OLTP, every legal protocol/topology)"
                .to_string(),
            points: tc_system::experiment::sweep64_points(),
            table: TableKind::Sweep,
        }],
        "faultsweep" => vec![Section {
            title: "Fault sweep: contract-gated injection, contended hot-block, 4-node torus"
                .to_string(),
            points: tc_system::experiment::faultsweep_points(),
            table: TableKind::Fault,
        }],
        _ => return None, // table1 has no simulation sections
    };
    Some(sections)
}

/// Renders the Table 2 reissue percentages (plus the cross-workload average
/// row) from a campaign report.
pub fn render_reissue_table(report: &CampaignReport) -> String {
    let mut out = format!(
        "{:<12} {:>14} {:>14} {:>15} {:>14}\n",
        "workload", "not reissued", "reissued once", "reissued > once", "persistent"
    );
    let mut averages = [0.0f64; 4];
    for run in &report.runs {
        let row = run.report.table2_row();
        for (avg, value) in averages.iter_mut().zip(row.iter()) {
            *avg += value / report.runs.len() as f64;
        }
        out.push_str(&format!(
            "{:<12} {:>13.2}% {:>13.2}% {:>14.2}% {:>13.2}%\n",
            run.label, row[0], row[1], row[2], row[3]
        ));
    }
    out.push_str(&format!(
        "{:<12} {:>13.2}% {:>13.2}% {:>14.2}% {:>13.2}%\n",
        "Average", averages[0], averages[1], averages[2], averages[3]
    ));
    out
}

/// Renders the Question 5 scalability comparison: one row per node count,
/// one column per protocol, from the per-node-count campaign slices.
pub fn render_scalability_table(slices: &[(usize, CampaignReport)]) -> String {
    let mut out = format!(
        "{:>6} {:>18} {:>18} {:>18} {:>12}\n",
        "nodes", "TokenB B/miss", "Directory B/miss", "Hammer B/miss", "TokenB/Dir"
    );
    for (nodes, slice) in slices {
        let find = |protocol: ProtocolKind| {
            slice
                .runs
                .iter()
                .find(|run| run.report.protocol == protocol)
                .map(|run| run.report.bytes_per_miss())
                .unwrap_or(f64::NAN)
        };
        let tokenb = find(ProtocolKind::TokenB);
        let directory = find(ProtocolKind::Directory);
        let hammer = find(ProtocolKind::Hammer);
        out.push_str(&format!(
            "{:>6} {:>18.1} {:>18.1} {:>18.1} {:>11.2}x\n",
            nodes,
            tokenb,
            directory,
            hammer,
            tokenb / directory
        ));
    }
    out
}

/// Renders the fault sweep: per point, the injected-fault counts and the
/// recovery-side statistics (reissue timeouts fired, persistent-request
/// activations, worst-case miss recovery latency), plus the verifier's
/// verdict — the row-by-row version of "safe and live under fire".
pub fn render_fault_table(report: &CampaignReport) -> String {
    let mut out = format!(
        "{:<22} {:>7} {:>5} {:>7} {:>7} {:>6} {:>8} {:>10} {:>12} {:>9}\n",
        "point",
        "dropped",
        "dup",
        "delayed",
        "reorder",
        "outage",
        "reissues",
        "persistent",
        "recovery ns",
        "verdict"
    );
    for run in &report.runs {
        let f = run.report.engine.faults;
        let verdict = if run.report.violations.is_empty() {
            "ok"
        } else {
            "VIOLATED"
        };
        out.push_str(&format!(
            "{:<22} {:>7} {:>5} {:>7} {:>7} {:>6} {:>8} {:>10} {:>12} {:>9}\n",
            run.label,
            f.dropped,
            f.duplicated,
            f.delayed,
            f.reordered,
            f.link_deferred,
            f.reissue_timeouts,
            f.persistent_activations,
            f.max_recovery_ns,
            verdict
        ));
    }
    out
}

/// Renders Table 1 (the target system parameters) — the one campaign that
/// runs no simulation.
pub fn render_table1() -> String {
    let c = SystemConfig::isca03_default();
    let mut out = String::from("Table 1: target system parameters (ISCA 2003)\n\n");
    out.push_str("Coherent memory system\n");
    out.push_str(&format!(
        "  split L1 I & D caches    {} kB, {}-way, {} ns\n",
        c.l1.size_bytes / 1024,
        c.l1.associativity,
        c.l1.latency_ns
    ));
    out.push_str(&format!(
        "  unified L2 cache         {} MB, {}-way, {} ns\n",
        c.l2.size_bytes / (1024 * 1024),
        c.l2.associativity,
        c.l2.latency_ns
    ));
    out.push_str(&format!(
        "  cache block size         {} bytes\n",
        c.block_bytes
    ));
    out.push_str(&format!(
        "  DRAM / directory latency {} ns\n",
        c.dram_latency_ns
    ));
    out.push_str(&format!(
        "  memory/dir controllers   {} ns\n",
        c.controller_latency_ns
    ));
    out.push_str(&format!(
        "  network link bandwidth   {:.1} GB/s\n",
        c.interconnect.link_bandwidth_bytes_per_ns
    ));
    out.push_str(&format!(
        "  network link latency     {} ns (wire + sync + route)\n",
        c.interconnect.link_latency_ns
    ));
    out.push_str("\nProcessors\n");
    out.push_str(&format!("  nodes                    {}\n", c.num_nodes));
    out.push_str(&format!(
        "  outstanding misses       {} (reorder window {} memory ops)\n",
        c.processor.max_outstanding_misses, c.processor.overlap_window
    ));
    out.push_str(&format!(
        "  ops per transaction      {}\n",
        c.processor.ops_per_transaction
    ));
    out.push_str("\nToken Coherence\n");
    out.push_str(&format!(
        "  tokens per block (T)     {}\n",
        c.token.tokens_per_block
    ));
    out.push_str(&format!(
        "  reissue timeout          {}x average miss latency + randomized backoff\n",
        c.token.reissue_latency_multiplier
    ));
    out.push_str(&format!(
        "  persistent escalation    after ~{} reissues\n",
        c.token.reissues_before_persistent
    ));
    out.push_str(&format!(
        "  token state per block    {} bits\n",
        c.token_state_bits()
    ));
    out
}

/// A sanity cross-check the `tc-bench` CLI runs after every campaign: the
/// sum of the per-class bytes must equal the total for every run (guards
/// the traffic renderers against a class being silently dropped from
/// [`TrafficClass::ALL`]).
pub fn traffic_classes_cover_total(report: &CampaignReport) -> bool {
    report.runs.iter().all(|run| {
        let breakdown = run.report.traffic_breakdown();
        let sum: f64 = TrafficClass::ALL
            .iter()
            .map(|class| breakdown.class(*class))
            .sum();
        (sum - breakdown.total()).abs() < 1e-6
    })
}

/// Merges `fields` into the flat one-field-per-line JSON file at `path`
/// (the `BENCH_engine.json` format), replacing same-named fields and
/// preserving everything else. Creates the file if missing. Values are
/// inserted verbatim, so callers pass pre-formatted JSON scalars.
///
/// # Errors
///
/// Returns any I/O error from writing the file.
pub fn merge_bench_fields(path: &str, fields: &[(String, String)]) -> std::io::Result<()> {
    let previous = std::fs::read_to_string(path).unwrap_or_default();
    let mut kept: Vec<String> = previous
        .lines()
        .map(|line| line.trim().trim_end_matches(',').to_string())
        .filter(|line| !line.is_empty() && line != "{" && line != "}")
        .filter(|line| {
            !fields
                .iter()
                .any(|(key, _)| line.starts_with(&format!("\"{key}\"")))
        })
        .collect();
    for (key, value) in fields {
        kept.push(format!("\"{key}\": {value}"));
    }
    std::fs::write(path, format!("{{\n  {}\n}}\n", kept.join(",\n  ")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tc_system::campaign::Campaign;
    use tc_system::RunOptions;

    #[test]
    fn every_retired_binary_resolves_to_a_campaign() {
        for name in [
            "table1",
            "table2",
            "fig4_runtime",
            "fig4_traffic",
            "fig5_runtime",
            "fig5_traffic",
            "scalability",
            "sweep64",
        ] {
            assert!(resolve_campaign(name).is_some(), "{name} must resolve");
        }
        assert!(resolve_campaign("FIG4-RUNTIME").is_some());
        assert!(resolve_campaign("nope").is_none());
    }

    #[test]
    fn figure_campaigns_have_one_section_per_commercial_workload() {
        let sections = campaign_sections("fig4-runtime", None).unwrap();
        assert_eq!(sections.len(), 3);
        assert!(sections.iter().all(|s| s.table == TableKind::Runtime));
        assert_eq!(sections[0].points.len(), 6);
        let only = WorkloadProfile::oltp();
        let restricted = campaign_sections("fig5-traffic", Some(&only)).unwrap();
        assert_eq!(restricted.len(), 1);
        assert!(restricted[0].title.contains("OLTP"));
    }

    #[test]
    fn scalability_sections_follow_the_node_counts() {
        let sections = campaign_sections("scalability", None).unwrap();
        assert_eq!(sections.len(), SCALABILITY_NODE_COUNTS.len());
        for (section, nodes) in sections.iter().zip(SCALABILITY_NODE_COUNTS) {
            assert!(section.points.iter().all(|p| p.config.num_nodes == nodes));
        }
    }

    #[test]
    fn faultsweep_resolves_and_gates_points_per_protocol() {
        assert!(resolve_campaign("faultsweep").is_some());
        assert!(resolve_campaign("faults").is_some());
        let sections = campaign_sections("faultsweep", None).unwrap();
        assert_eq!(sections.len(), 1);
        assert_eq!(sections[0].table, TableKind::Fault);
        let points = &sections[0].points;
        // TokenB takes a baseline + all five classes + combined; the
        // unordered baselines take baseline + three classes + combined.
        assert_eq!(points.len(), 7 + 5 + 5);
        // Every non-baseline point carries only classes its protocol
        // tolerates.
        for point in points {
            for kind in tc_types::FaultKind::ALL {
                if point.faults.enables(kind) {
                    assert!(
                        point.config.protocol.tolerates(kind),
                        "{}: injects untolerated class {kind:?}",
                        point.label
                    );
                }
            }
        }
    }

    #[test]
    fn fault_table_renders_stats_and_verdicts() {
        let mut points = tc_system::experiment::faultsweep_points();
        points.retain(|p| p.label.starts_with("TokenB"));
        points.truncate(2); // baseline + drop
        let report = Campaign::new(points)
            .options(RunOptions {
                ops_per_node: 300,
                max_cycles: 50_000_000,
                ..RunOptions::default()
            })
            .threads(1)
            .run();
        assert!(report.verified().is_ok());
        let table = render_fault_table(&report);
        assert!(table.contains("TokenB (reliable)"));
        assert!(table.contains("persistent"));
        assert!(table.contains("ok"));
        assert!(!table.contains("VIOLATED"));
    }

    #[test]
    fn table1_renders_the_parameter_table() {
        let text = render_table1();
        assert!(text.contains("Table 1"));
        assert!(text.contains("tokens per block"));
        assert!(text.contains("3.2 GB/s"));
    }

    #[test]
    fn reissue_and_scalability_renderers_work_on_real_reports() {
        let mut points = table2_points();
        points.truncate(1);
        points[0].config = points[0].config.clone().with_nodes(4);
        points[0].config.l2.size_bytes = 256 * 1024;
        let report = Campaign::new(points)
            .options(RunOptions {
                ops_per_node: 400,
                max_cycles: 50_000_000,
                ..RunOptions::default()
            })
            .threads(1)
            .run();
        assert!(report.verified().is_ok());
        let reissue = render_reissue_table(&report);
        assert!(reissue.contains("Average"));
        assert!(traffic_classes_cover_total(&report));
        let scal = render_scalability_table(&[(4, report)]);
        assert!(scal.contains("TokenB/Dir"));
    }

    #[test]
    fn merge_bench_fields_replaces_and_preserves() {
        let path = std::env::temp_dir().join("tc_bench_merge_test.json");
        let path = path.to_str().unwrap().to_string();
        let _ = std::fs::remove_file(&path);
        merge_bench_fields(
            &path,
            &[
                ("alpha".to_string(), "1".to_string()),
                ("beta".to_string(), "2.5".to_string()),
            ],
        )
        .unwrap();
        merge_bench_fields(&path, &[("alpha".to_string(), "7".to_string())]).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"alpha\": 7"));
        assert!(text.contains("\"beta\": 2.5"));
        assert_eq!(text.matches("alpha").count(), 1);
        assert!(text.starts_with("{\n"));
        assert!(text.ends_with("}\n"));
        let _ = std::fs::remove_file(&path);
    }
}
