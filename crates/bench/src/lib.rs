//! Shared helpers for the experiment binaries and Criterion benches.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the paper's
//! evaluation section:
//!
//! | binary        | paper artifact |
//! |---------------|----------------|
//! | `table1`      | Table 1 — target system parameters |
//! | `table2`      | Table 2 — reissued / persistent request rates |
//! | `fig4_runtime`| Figure 4a — runtime, Snooping vs TokenB |
//! | `fig4_traffic`| Figure 4b — traffic, Snooping vs TokenB |
//! | `fig5_runtime`| Figure 5a — runtime, Directory & Hammer vs TokenB |
//! | `fig5_traffic`| Figure 5b — traffic, Directory & Hammer vs TokenB |
//! | `scalability` | Section 6, Question 5 — traffic scaling to 64 processors |
//!
//! Every binary accepts an optional `--ops N` argument controlling the number
//! of memory operations simulated per node (default 12 000); larger values
//! reduce noise at the cost of wall-clock time. Results are printed as
//! aligned text tables whose rows mirror the paper's figures and are recorded
//! in `EXPERIMENTS.md`.

#![warn(missing_docs)]

use tc_system::experiment::{default_options, ExperimentPoint};
use tc_system::{RunOptions, RunReport};
use tc_types::TrafficClass;

/// Parses the common `--ops N` command-line option.
pub fn run_options_from_args() -> RunOptions {
    let mut options = default_options();
    let args: Vec<String> = std::env::args().collect();
    for window in args.windows(2) {
        if window[0] == "--ops" {
            if let Ok(ops) = window[1].parse() {
                options.ops_per_node = ops;
            }
        }
    }
    options
}

/// Runs a set of experiment points, printing progress, and returns the
/// reports paired with their labels.
pub fn run_points(points: &[ExperimentPoint], options: RunOptions) -> Vec<(String, RunReport)> {
    points
        .iter()
        .map(|point| {
            eprintln!("  running {} ...", point.label);
            let report = point.run(options);
            if let Err(violation) = report.verified() {
                eprintln!("  !! verification failure in {}: {violation}", point.label);
            }
            (point.label.clone(), report)
        })
        .collect()
}

/// Prints a runtime comparison table normalized against the first entry,
/// mirroring the "normalized runtime" bars of Figures 4a and 5a (smaller is
/// better).
pub fn print_runtime_table(title: &str, rows: &[(String, RunReport)]) {
    println!("\n{title}");
    println!(
        "{:<38} {:>16} {:>12} {:>12}",
        "configuration", "cycles/txn", "normalized", "c2c misses"
    );
    let baseline = rows
        .first()
        .map(|(_, r)| r.cycles_per_transaction())
        .unwrap_or(1.0);
    for (label, report) in rows {
        println!(
            "{:<38} {:>16.0} {:>12.3} {:>11.1}%",
            label,
            report.cycles_per_transaction(),
            report.cycles_per_transaction() / baseline,
            100.0 * report.misses.cache_to_cache_fraction()
        );
    }
}

/// Prints a traffic-breakdown table in bytes per miss, mirroring the stacked
/// bars of Figures 4b and 5b.
pub fn print_traffic_table(title: &str, rows: &[(String, RunReport)]) {
    println!("\n{title}");
    println!(
        "{:<24} {:>12} {:>12} {:>12} {:>12} {:>12} {:>12}",
        "configuration", "data+wb", "requests", "fwd+inv", "other", "reissue+per", "total"
    );
    for (label, report) in rows {
        let breakdown = report.traffic_breakdown();
        println!(
            "{:<24} {:>12.1} {:>12.1} {:>12.1} {:>12.1} {:>12.1} {:>12.1}",
            label,
            breakdown.class(TrafficClass::DataResponseOrWriteback),
            breakdown.class(TrafficClass::Request),
            breakdown.class(TrafficClass::ForwardedOrInvalidation),
            breakdown.class(TrafficClass::OtherControl),
            breakdown.class(TrafficClass::ReissueOrPersistent),
            breakdown.total()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tc_system::experiment::{smoke_options, table2_points};

    #[test]
    fn options_default_without_args() {
        let options = run_options_from_args();
        assert!(options.ops_per_node > 0);
    }

    #[test]
    fn run_points_produces_one_report_per_point() {
        let mut points = table2_points();
        points.truncate(1);
        // Shrink to a fast smoke configuration.
        points[0].config = points[0].config.clone().with_nodes(4);
        points[0].config.l2.size_bytes = 256 * 1024;
        let rows = run_points(&points, smoke_options());
        assert_eq!(rows.len(), 1);
        assert!(rows[0].1.total_ops > 0);
        // The printers must not panic on real data.
        print_runtime_table("smoke", &rows);
        print_traffic_table("smoke", &rows);
    }
}
