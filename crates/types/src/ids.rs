//! Identifiers and the simulated time unit.

use std::fmt;

/// Simulated time, in nanoseconds.
///
/// The target system runs a 1 GHz processor clock (ISCA 2003 Table 1), so one
/// nanosecond is also one processor cycle; the two terms are used
/// interchangeably throughout the workspace.
pub type Cycle = u64;

/// Identifier of a highly-integrated node.
///
/// Each node contains a processor, two levels of cache, a coherence
/// controller, and the memory controller (home) for an interleaved slice of
/// physical memory, matching the "glueless" node of the paper (Figure 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(u16);

impl NodeId {
    /// Creates a node identifier from a dense index.
    pub fn new(index: usize) -> Self {
        NodeId(index as u16)
    }

    /// Returns the dense index of this node.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

impl From<usize> for NodeId {
    fn from(value: usize) -> Self {
        NodeId::new(value)
    }
}

/// Identifier of an outstanding processor memory request (miss).
///
/// Request identifiers are unique per node for the lifetime of a simulation
/// and are used to match miss completions back to the processor model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ReqId(u64);

impl ReqId {
    /// Creates a request identifier from a raw value.
    pub fn new(value: u64) -> Self {
        ReqId(value)
    }

    /// Returns the raw value of this request identifier.
    pub fn value(self) -> u64 {
        self.0
    }
}

impl fmt::Display for ReqId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "req#{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_round_trips_index() {
        for i in 0..64 {
            assert_eq!(NodeId::new(i).index(), i);
        }
    }

    #[test]
    fn node_id_display_is_compact() {
        assert_eq!(NodeId::new(3).to_string(), "P3");
    }

    #[test]
    fn node_id_orders_by_index() {
        assert!(NodeId::new(1) < NodeId::new(2));
        assert_eq!(NodeId::new(5), NodeId::from(5));
    }

    #[test]
    fn req_id_round_trips() {
        let id = ReqId::new(42);
        assert_eq!(id.value(), 42);
        assert_eq!(id.to_string(), "req#42");
    }
}
