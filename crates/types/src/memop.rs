//! Processor-side memory operations.

use std::fmt;

use crate::addr::Address;
use crate::ids::ReqId;

/// Whether an access needs read or read/write permission.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessType {
    /// Needs at least one token / a shared copy.
    Read,
    /// Needs all tokens / an exclusive copy.
    Write,
}

/// The kind of memory operation a processor issues.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemOpKind {
    /// A data load.
    Load,
    /// A data store.
    Store,
    /// An instruction fetch (treated as a load by the coherence protocol).
    Ifetch,
    /// An atomic read-modify-write (needs write permission).
    Atomic,
}

impl MemOpKind {
    /// Returns the coherence permission this operation needs.
    pub fn access_type(self) -> AccessType {
        match self {
            MemOpKind::Load | MemOpKind::Ifetch => AccessType::Read,
            MemOpKind::Store | MemOpKind::Atomic => AccessType::Write,
        }
    }

    /// Returns `true` if the operation modifies memory.
    pub fn is_write(self) -> bool {
        self.access_type() == AccessType::Write
    }
}

/// A single memory operation issued by a processor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemOp {
    /// Identifier used to match the completion back to the processor.
    pub id: ReqId,
    /// Byte address accessed.
    pub addr: Address,
    /// Load/store/ifetch/atomic.
    pub kind: MemOpKind,
}

impl MemOp {
    /// Creates a memory operation.
    pub fn new(id: ReqId, addr: Address, kind: MemOpKind) -> Self {
        MemOp { id, addr, kind }
    }

    /// Returns the coherence permission this operation needs.
    pub fn access_type(&self) -> AccessType {
        self.kind.access_type()
    }
}

impl fmt::Display for MemOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let k = match self.kind {
            MemOpKind::Load => "LD",
            MemOpKind::Store => "ST",
            MemOpKind::Ifetch => "IF",
            MemOpKind::Atomic => "AT",
        };
        write!(f, "{k} {} ({})", self.addr, self.id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loads_and_ifetches_need_read_permission() {
        assert_eq!(MemOpKind::Load.access_type(), AccessType::Read);
        assert_eq!(MemOpKind::Ifetch.access_type(), AccessType::Read);
        assert!(!MemOpKind::Load.is_write());
    }

    #[test]
    fn stores_and_atomics_need_write_permission() {
        assert_eq!(MemOpKind::Store.access_type(), AccessType::Write);
        assert_eq!(MemOpKind::Atomic.access_type(), AccessType::Write);
        assert!(MemOpKind::Atomic.is_write());
    }

    #[test]
    fn mem_op_exposes_access_type() {
        let op = MemOp::new(ReqId::new(1), Address::new(0x40), MemOpKind::Store);
        assert_eq!(op.access_type(), AccessType::Write);
        assert!(op.to_string().starts_with("ST"));
    }
}
