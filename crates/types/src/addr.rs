//! Physical addresses, cache-block addresses, and the home-node map.

use std::fmt;

use crate::ids::NodeId;

/// A physical byte address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Address(u64);

impl Address {
    /// Creates a physical address from a raw byte address.
    pub fn new(addr: u64) -> Self {
        Address(addr)
    }

    /// Returns the raw byte address.
    pub fn value(self) -> u64 {
        self.0
    }

    /// Returns the block this address falls into for the given block size.
    ///
    /// # Panics
    ///
    /// Panics if `block_bytes` is not a power of two.
    pub fn block(self, block_bytes: u64) -> BlockAddr {
        BlockAddr::from_address(self, block_bytes)
    }
}

impl fmt::Display for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl From<u64> for Address {
    fn from(value: u64) -> Self {
        Address(value)
    }
}

/// A cache-block-aligned address (the byte address divided by the block size).
///
/// All coherence state — tokens, directory entries, cache tags — is kept at
/// block granularity, so the simulator works almost exclusively in terms of
/// `BlockAddr`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct BlockAddr(u64);

impl BlockAddr {
    /// Creates a block address directly from a block number.
    pub fn new(block_number: u64) -> Self {
        BlockAddr(block_number)
    }

    /// Computes the block address containing a byte address.
    ///
    /// # Panics
    ///
    /// Panics if `block_bytes` is not a power of two.
    pub fn from_address(addr: Address, block_bytes: u64) -> Self {
        assert!(
            block_bytes.is_power_of_two(),
            "block size must be a power of two, got {block_bytes}"
        );
        BlockAddr(addr.value() >> block_bytes.trailing_zeros())
    }

    /// Returns the block number.
    pub fn value(self) -> u64 {
        self.0
    }

    /// Returns the first byte address covered by this block.
    pub fn base_address(self, block_bytes: u64) -> Address {
        Address::new(self.0 * block_bytes)
    }
}

impl fmt::Display for BlockAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "blk:{:#x}", self.0)
    }
}

impl From<u64> for BlockAddr {
    fn from(value: u64) -> Self {
        BlockAddr(value)
    }
}

/// Maps blocks to their home node (memory controller).
///
/// Physical memory is block-interleaved across all nodes, as in the Alpha
/// 21364 and AMD Hammer systems the paper models: block `b` lives at node
/// `b mod N`. The home node holds the block's memory copy, its directory
/// entry (directory protocol), its memory "owner bit" (snooping protocol),
/// and its persistent-request arbiter (Token Coherence).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HomeMap {
    num_nodes: usize,
    block_bytes: u64,
    /// `num_nodes - 1` when the node count is a power of two, letting
    /// [`HomeMap::home_of`] mask instead of dividing: it runs on every
    /// request issue and every home-side message receipt. Zero disables it.
    node_mask: u64,
}

impl HomeMap {
    /// Creates a home map for a system with `num_nodes` nodes and
    /// `block_bytes`-byte cache blocks.
    ///
    /// # Panics
    ///
    /// Panics if `num_nodes` is zero.
    pub fn new(num_nodes: usize, block_bytes: u64) -> Self {
        assert!(num_nodes > 0, "a system needs at least one node");
        HomeMap {
            num_nodes,
            block_bytes,
            node_mask: if num_nodes.is_power_of_two() {
                num_nodes as u64 - 1
            } else {
                0
            },
        }
    }

    /// Returns the number of nodes covered by this map.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Returns the cache-block size in bytes.
    pub fn block_bytes(&self) -> u64 {
        self.block_bytes
    }

    /// Returns the home node of a block.
    #[inline]
    pub fn home_of(&self, block: BlockAddr) -> NodeId {
        if self.node_mask != 0 {
            NodeId::new((block.value() & self.node_mask) as usize)
        } else {
            NodeId::new((block.value() % self.num_nodes as u64) as usize)
        }
    }

    /// Returns the home node of a byte address.
    pub fn home_of_address(&self, addr: Address) -> NodeId {
        self.home_of(addr.block(self.block_bytes))
    }

    /// Returns `true` if `node` is the home of `block`.
    pub fn is_home(&self, node: NodeId, block: BlockAddr) -> bool {
        self.home_of(block) == node
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_addr_from_address_shifts_by_block_size() {
        let a = Address::new(0x1000);
        assert_eq!(a.block(64), BlockAddr::new(0x40));
        assert_eq!(a.block(128), BlockAddr::new(0x20));
    }

    #[test]
    fn block_base_address_round_trips() {
        let b = BlockAddr::new(0x40);
        assert_eq!(b.base_address(64), Address::new(0x1000));
        assert_eq!(Address::new(0x1000).block(64), b);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_block_size_panics() {
        let _ = Address::new(0).block(48);
    }

    #[test]
    fn addresses_in_same_block_map_to_same_block() {
        let base = Address::new(0x2000);
        for offset in 0..64 {
            assert_eq!(
                Address::new(base.value() + offset).block(64),
                base.block(64)
            );
        }
        assert_ne!(Address::new(base.value() + 64).block(64), base.block(64));
    }

    #[test]
    fn home_map_interleaves_blocks() {
        let map = HomeMap::new(16, 64);
        assert_eq!(map.home_of(BlockAddr::new(0)), NodeId::new(0));
        assert_eq!(map.home_of(BlockAddr::new(1)), NodeId::new(1));
        assert_eq!(map.home_of(BlockAddr::new(16)), NodeId::new(0));
        assert_eq!(map.home_of(BlockAddr::new(33)), NodeId::new(1));
    }

    #[test]
    fn home_map_covers_all_nodes() {
        let map = HomeMap::new(7, 64);
        let mut seen = [false; 7];
        for b in 0..70 {
            seen[map.home_of(BlockAddr::new(b)).index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn home_of_address_matches_home_of_block() {
        let map = HomeMap::new(4, 64);
        let addr = Address::new(0x1234);
        assert_eq!(map.home_of_address(addr), map.home_of(addr.block(64)));
        assert!(map.is_home(map.home_of_address(addr), addr.block(64)));
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_node_home_map_panics() {
        let _ = HomeMap::new(0, 64);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Address::new(0xff).to_string(), "0xff");
        assert_eq!(BlockAddr::new(0x10).to_string(), "blk:0x10");
    }
}
