//! Coherence messages exchanged between nodes over the interconnect.

use std::fmt;
use std::sync::Arc;

use crate::addr::BlockAddr;
use crate::ids::{Cycle, NodeId, ReqId};

/// Size in bytes of a control message (requests, acknowledgements,
/// invalidations, dataless token transfers).
///
/// The paper sizes these at 8 bytes, which covers the 40+ bit physical
/// address and, for Token Coherence, the token count.
pub const CONTROL_MSG_BYTES: u64 = 8;

/// Size in bytes of a message that carries a 64-byte data block plus the
/// 8-byte header.
pub const DATA_MSG_BYTES: u64 = 72;

/// The simulated contents of a cache block.
///
/// Rather than modelling 64 bytes of payload, the simulator carries a single
/// version counter per block. Every store increments the version, so the
/// verification layer can check that every load observes the value written by
/// the most recent store that completed before it — a direct check of the
/// single-writer/valid-data safety property the token-counting invariants are
/// supposed to provide.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DataPayload {
    /// Monotonically increasing version of the block contents.
    pub version: u64,
}

impl DataPayload {
    /// Creates a payload with the given version.
    pub fn new(version: u64) -> Self {
        DataPayload { version }
    }
}

/// Virtual networks used to avoid protocol deadlock.
///
/// Messages on different virtual networks never block each other; within a
/// virtual network, delivery between a given source and destination is
/// modelled in FIFO order by the interconnect. The unordered interconnect
/// (torus) provides **no** ordering between different source/destination
/// pairs, which is exactly the property that breaks traditional snooping and
/// motivates Token Coherence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Vnet {
    /// Transient and ordinary coherence requests.
    Request,
    /// Data and acknowledgement responses.
    Response,
    /// Requests forwarded by a home/directory node, and invalidations.
    Forwarded,
    /// Persistent-request activation/deactivation traffic (Token Coherence).
    Persistent,
    /// Writebacks and token/data evictions to memory.
    Writeback,
}

impl Vnet {
    /// All virtual networks, in priority order used by the interconnect.
    pub const ALL: [Vnet; 5] = [
        Vnet::Response,
        Vnet::Forwarded,
        Vnet::Persistent,
        Vnet::Writeback,
        Vnet::Request,
    ];
}

/// Destination of a message.
///
/// The multicast node set is reference-counted so that cloning a message —
/// which the interconnect does once per delivery — never allocates: every
/// delivery of a multicast shares one node list. `Hash`/`Eq` compare the
/// *contents* of the list rather than the `Arc` pointer, so two
/// independently built lists with the same nodes in the same order are the
/// same destination — which the interconnect relies on to cache one
/// multicast tree per distinct destination pattern. The comparison is
/// order-sensitive (`[1, 2] != [2, 1]`); protocols build their node lists in
/// ascending node order, so equivalent sets compare equal in practice, but
/// differently-ordered lists would only cost duplicate cache entries, never
/// wrong routing.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Destination {
    /// Deliver to a single node.
    Node(NodeId),
    /// Deliver to every node except the sender (broadcast).
    Broadcast,
    /// Deliver to an explicit set of nodes.
    Multicast(Arc<[NodeId]>),
}

impl Destination {
    /// Creates a multicast destination from a node list.
    pub fn multicast(nodes: impl Into<Arc<[NodeId]>>) -> Self {
        Destination::Multicast(nodes.into())
    }

    /// Returns `true` if `node` is covered by this destination, given the
    /// original sender (broadcasts do not loop back to the sender).
    pub fn includes(&self, node: NodeId, sender: NodeId) -> bool {
        match self {
            Destination::Node(n) => *n == node,
            Destination::Broadcast => node != sender,
            Destination::Multicast(nodes) => nodes.contains(&node),
        }
    }

    /// Expands the destination into the list of receiving node indices for a
    /// system of `num_nodes` nodes.
    pub fn expand(&self, num_nodes: usize, sender: NodeId) -> Vec<NodeId> {
        match self {
            Destination::Node(n) => vec![*n],
            Destination::Broadcast => (0..num_nodes)
                .map(NodeId::new)
                .filter(|n| *n != sender)
                .collect(),
            Destination::Multicast(nodes) => nodes.to_vec(),
        }
    }
}

/// The kind (opcode + protocol-specific payload) of a coherence message.
///
/// A single enum covers all four protocols so that the interconnect, traffic
/// accounting, and system runner are protocol-agnostic. Each protocol only
/// ever sends and receives the variants it understands.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MsgKind {
    // ------------------------------------------------------------------
    // Requests shared by all protocols (8-byte control messages).
    // ------------------------------------------------------------------
    /// Request for a read-only (shared) copy.
    GetS,
    /// Request for a read/write (modified) copy.
    GetM,
    /// Writeback of an owned/modified block to its home (carries data).
    PutM,
    /// Eviction notice of a shared block (control only; used by Directory).
    PutS,

    // ------------------------------------------------------------------
    // Token Coherence (correctness substrate + TokenB).
    // ------------------------------------------------------------------
    /// Data together with `tokens` tokens; `owner` marks the owner token.
    TokenData {
        /// Number of tokens carried (including the owner token if present).
        tokens: u32,
        /// Whether the owner token is included (invariant #4': implies data).
        owner: bool,
        /// Whether the block was dirty with respect to memory.
        dirty: bool,
        /// Whether the response was sourced by the home memory rather than a
        /// cache (used for cache-to-cache miss accounting).
        from_memory: bool,
        /// Simulated block contents.
        payload: DataPayload,
    },
    /// Dataless transfer of non-owner tokens (like an invalidation ack).
    TokenOnly {
        /// Number of non-owner tokens carried.
        tokens: u32,
    },
    /// A starving node asks the home arbiter to activate a persistent request.
    PersistentRequest {
        /// Whether the requester needs write (all tokens) or read permission.
        write: bool,
    },
    /// The arbiter activates a persistent request on behalf of `requester`.
    PersistentActivate {
        /// Node that will receive all tokens for the block.
        requester: NodeId,
        /// Whether the requester needs write permission.
        write: bool,
    },
    /// The arbiter deactivates the currently active persistent request.
    PersistentDeactivate,
    /// A node acknowledges a persistent activation or deactivation.
    PersistentAck,
    /// The satisfied requester asks the arbiter to deactivate its request.
    PersistentComplete,

    // ------------------------------------------------------------------
    // Directory / Hammer / Snooping responses and forwards.
    // ------------------------------------------------------------------
    /// Data response. `acks_expected` tells the requester how many
    /// invalidation acknowledgements to collect (directory protocol);
    /// `exclusive` grants write permission; `from_memory` marks responses
    /// sourced by the home memory rather than a cache.
    Data {
        /// Number of invalidation acks the requester must still collect.
        acks_expected: u32,
        /// Whether the copy is exclusive (M/E) rather than shared.
        exclusive: bool,
        /// Whether the response came from memory (as opposed to a cache).
        from_memory: bool,
        /// Simulated block contents.
        payload: DataPayload,
    },
    /// Home/directory forwards a GetS to the current owner.
    FwdGetS {
        /// Original requester that the owner must respond to.
        requester: NodeId,
    },
    /// Home/directory forwards a GetM to the current owner.
    FwdGetM {
        /// Original requester that the owner must respond to.
        requester: NodeId,
        /// Number of invalidation acknowledgements the requester must collect
        /// (the home knows the sharer count; the owner copies it into its
        /// data response).
        acks_expected: u32,
    },
    /// Invalidate a shared copy on behalf of `requester`.
    Inv {
        /// Node waiting for the invalidation acknowledgement.
        requester: NodeId,
    },
    /// Acknowledge an invalidation (directory) or a Hammer probe miss.
    InvAck,
    /// Acknowledge a writeback.
    WbAck,
    /// Snooping writeback handshake: the writer observed its own ordered PutM
    /// but no longer holds the block (ownership was taken by a request
    /// ordered before the PutM, or the writer pulled the block back into its
    /// cache), so no writeback data will follow. The home uses this to close
    /// the writeback window the PutM opened. Carries the version of the
    /// cancelled PutM in `req_id` so out-of-order handshakes can be matched.
    WbCancel,
    /// Requester tells the home/directory that its transaction is complete.
    Unblock,
    /// Requester tells the home it now holds the block exclusively.
    ExclusiveUnblock,
    /// Hammer: home broadcasts the original request to all nodes.
    HammerProbe {
        /// Original requester all nodes must respond to.
        requester: NodeId,
        /// Whether the original request was a GetM.
        write: bool,
    },
}

impl MsgKind {
    /// Returns `true` if this message carries a data block (72 bytes).
    pub fn carries_data(&self) -> bool {
        matches!(
            self,
            MsgKind::TokenData { .. } | MsgKind::Data { .. } | MsgKind::PutM
        )
    }

    /// Returns the simulated size of a message of this kind, in bytes.
    pub fn size_bytes(&self) -> u64 {
        if self.carries_data() {
            DATA_MSG_BYTES
        } else {
            CONTROL_MSG_BYTES
        }
    }

    /// Returns the number of tokens carried by this message (zero for
    /// non-token-protocol messages).
    pub fn token_count(&self) -> u32 {
        match self {
            MsgKind::TokenData { tokens, .. } => *tokens,
            MsgKind::TokenOnly { tokens } => *tokens,
            _ => 0,
        }
    }

    /// Returns `true` if this message carries the owner token.
    pub fn carries_owner_token(&self) -> bool {
        matches!(self, MsgKind::TokenData { owner: true, .. })
    }

    /// Short mnemonic used in traces and debugging output.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            MsgKind::GetS => "GetS",
            MsgKind::GetM => "GetM",
            MsgKind::PutM => "PutM",
            MsgKind::PutS => "PutS",
            MsgKind::TokenData { .. } => "TokenData",
            MsgKind::TokenOnly { .. } => "TokenOnly",
            MsgKind::PersistentRequest { .. } => "PersistentRequest",
            MsgKind::PersistentActivate { .. } => "PersistentActivate",
            MsgKind::PersistentDeactivate => "PersistentDeactivate",
            MsgKind::PersistentAck => "PersistentAck",
            MsgKind::PersistentComplete => "PersistentComplete",
            MsgKind::Data { .. } => "Data",
            MsgKind::FwdGetS { .. } => "FwdGetS",
            MsgKind::FwdGetM { .. } => "FwdGetM",
            MsgKind::Inv { .. } => "Inv",
            MsgKind::InvAck => "InvAck",
            MsgKind::WbAck => "WbAck",
            MsgKind::WbCancel => "WbCancel",
            MsgKind::Unblock => "Unblock",
            MsgKind::ExclusiveUnblock => "ExclusiveUnblock",
            MsgKind::HammerProbe { .. } => "HammerProbe",
        }
    }
}

/// A coherence message in flight.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Message {
    /// Node that sent the message.
    pub src: NodeId,
    /// Where the message is going.
    pub dest: Destination,
    /// Block the message concerns.
    pub addr: BlockAddr,
    /// Opcode and payload.
    pub kind: MsgKind,
    /// Virtual network the message travels on.
    pub vnet: Vnet,
    /// Time at which the message was handed to the interconnect.
    pub sent_at: Cycle,
    /// Outstanding-request identifier at the requester, if any. Used to
    /// distinguish responses to reissued transient requests from stale
    /// responses to earlier issues of the same request.
    pub req_id: Option<ReqId>,
    /// Marks a reissued transient request (Token Coherence only), so traffic
    /// accounting can separate reissues from first-issue requests as the
    /// paper's traffic breakdowns do.
    pub reissue: bool,
}

impl Message {
    /// Creates a message. The interconnect fills in timing as it routes it.
    pub fn new(
        src: NodeId,
        dest: Destination,
        addr: BlockAddr,
        kind: MsgKind,
        vnet: Vnet,
        sent_at: Cycle,
    ) -> Self {
        Message {
            src,
            dest,
            addr,
            kind,
            vnet,
            sent_at,
            req_id: None,
            reissue: false,
        }
    }

    /// Attaches an outstanding-request identifier to the message.
    pub fn with_req_id(mut self, req_id: ReqId) -> Self {
        self.req_id = Some(req_id);
        self
    }

    /// Marks this message as a reissued transient request.
    pub fn as_reissue(mut self) -> Self {
        self.reissue = true;
        self
    }

    /// Returns the simulated wire size of the message in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.kind.size_bytes()
    }
}

impl fmt::Display for Message {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} {} -> {:?} @{}",
            self.kind.mnemonic(),
            self.addr,
            self.src,
            self.dest,
            self.sent_at
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg(kind: MsgKind) -> Message {
        Message::new(
            NodeId::new(0),
            Destination::Broadcast,
            BlockAddr::new(7),
            kind,
            Vnet::Request,
            100,
        )
    }

    #[test]
    fn control_messages_are_eight_bytes() {
        assert_eq!(msg(MsgKind::GetS).size_bytes(), CONTROL_MSG_BYTES);
        assert_eq!(msg(MsgKind::GetM).size_bytes(), CONTROL_MSG_BYTES);
        assert_eq!(msg(MsgKind::InvAck).size_bytes(), CONTROL_MSG_BYTES);
        assert_eq!(
            msg(MsgKind::TokenOnly { tokens: 5 }).size_bytes(),
            CONTROL_MSG_BYTES
        );
    }

    #[test]
    fn data_messages_are_seventy_two_bytes() {
        let m = msg(MsgKind::TokenData {
            tokens: 3,
            owner: true,
            dirty: false,
            from_memory: false,
            payload: DataPayload::default(),
        });
        assert_eq!(m.size_bytes(), DATA_MSG_BYTES);
        let d = msg(MsgKind::Data {
            acks_expected: 0,
            exclusive: false,
            from_memory: true,
            payload: DataPayload::default(),
        });
        assert_eq!(d.size_bytes(), DATA_MSG_BYTES);
        assert_eq!(msg(MsgKind::PutM).size_bytes(), DATA_MSG_BYTES);
    }

    #[test]
    fn token_counts_are_reported() {
        assert_eq!(
            MsgKind::TokenData {
                tokens: 4,
                owner: true,
                dirty: true,
                from_memory: false,
                payload: DataPayload::new(1),
            }
            .token_count(),
            4
        );
        assert_eq!(MsgKind::TokenOnly { tokens: 2 }.token_count(), 2);
        assert_eq!(MsgKind::GetS.token_count(), 0);
    }

    #[test]
    fn owner_token_implies_data_in_the_type_system() {
        // Only TokenData can carry the owner token, and TokenData always
        // carries data: invariant #4' is structural.
        let with_owner = MsgKind::TokenData {
            tokens: 1,
            owner: true,
            dirty: false,
            from_memory: false,
            payload: DataPayload::default(),
        };
        assert!(with_owner.carries_owner_token());
        assert!(with_owner.carries_data());
        assert!(!MsgKind::TokenOnly { tokens: 3 }.carries_owner_token());
    }

    #[test]
    fn destination_includes_and_expand_agree() {
        let sender = NodeId::new(2);
        let bcast = Destination::Broadcast;
        let expanded = bcast.expand(4, sender);
        assert_eq!(expanded.len(), 3);
        for n in 0..4 {
            let node = NodeId::new(n);
            assert_eq!(bcast.includes(node, sender), expanded.contains(&node));
        }

        let ucast = Destination::Node(NodeId::new(1));
        assert!(ucast.includes(NodeId::new(1), sender));
        assert!(!ucast.includes(NodeId::new(0), sender));
        assert_eq!(ucast.expand(4, sender), vec![NodeId::new(1)]);

        let mcast = Destination::multicast(vec![NodeId::new(0), NodeId::new(3)]);
        assert!(mcast.includes(NodeId::new(3), sender));
        assert!(!mcast.includes(NodeId::new(1), sender));
        assert_eq!(mcast.expand(4, sender).len(), 2);
    }

    #[test]
    fn req_id_builder_attaches_identifier() {
        let m = msg(MsgKind::GetS).with_req_id(ReqId::new(9));
        assert_eq!(m.req_id, Some(ReqId::new(9)));
    }

    #[test]
    fn mnemonics_are_distinct_for_common_kinds() {
        let kinds = [
            MsgKind::GetS,
            MsgKind::GetM,
            MsgKind::PutM,
            MsgKind::InvAck,
            MsgKind::Unblock,
        ];
        let mut names: Vec<_> = kinds.iter().map(|k| k.mnemonic()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), kinds.len());
    }
}
