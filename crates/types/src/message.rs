//! Coherence messages exchanged between nodes over the interconnect.

use std::fmt;
use std::sync::Arc;

use tc_sim::{SnapReader, SnapWriter, SnapshotError};

use crate::addr::BlockAddr;
use crate::ids::{Cycle, NodeId, ReqId};

/// Size in bytes of a control message (requests, acknowledgements,
/// invalidations, dataless token transfers).
///
/// The paper sizes these at 8 bytes, which covers the 40+ bit physical
/// address and, for Token Coherence, the token count.
pub const CONTROL_MSG_BYTES: u64 = 8;

/// Size in bytes of a message that carries a 64-byte data block plus the
/// 8-byte header.
pub const DATA_MSG_BYTES: u64 = 72;

/// The simulated contents of a cache block.
///
/// Rather than modelling 64 bytes of payload, the simulator carries a single
/// version counter per block. Every store increments the version, so the
/// verification layer can check that every load observes the value written by
/// the most recent store that completed before it — a direct check of the
/// single-writer/valid-data safety property the token-counting invariants are
/// supposed to provide.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DataPayload {
    /// Monotonically increasing version of the block contents.
    pub version: u64,
}

impl DataPayload {
    /// Creates a payload with the given version.
    pub fn new(version: u64) -> Self {
        DataPayload { version }
    }
}

/// Virtual networks used to avoid protocol deadlock.
///
/// Messages on different virtual networks never block each other; within a
/// virtual network, delivery between a given source and destination is
/// modelled in FIFO order by the interconnect. The unordered interconnect
/// (torus) provides **no** ordering between different source/destination
/// pairs, which is exactly the property that breaks traditional snooping and
/// motivates Token Coherence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Vnet {
    /// Transient and ordinary coherence requests.
    Request,
    /// Data and acknowledgement responses.
    Response,
    /// Requests forwarded by a home/directory node, and invalidations.
    Forwarded,
    /// Persistent-request activation/deactivation traffic (Token Coherence).
    Persistent,
    /// Writebacks and token/data evictions to memory.
    Writeback,
}

impl Vnet {
    /// All virtual networks, in priority order used by the interconnect.
    pub const ALL: [Vnet; 5] = [
        Vnet::Response,
        Vnet::Forwarded,
        Vnet::Persistent,
        Vnet::Writeback,
        Vnet::Request,
    ];
}

/// Destination of a message.
///
/// The multicast node set is reference-counted so that cloning a message —
/// which the interconnect does once per delivery — never allocates: every
/// delivery of a multicast shares one node list. `Hash`/`Eq` compare the
/// *contents* of the list rather than the `Arc` pointer, so two
/// independently built lists with the same nodes in the same order are the
/// same destination — which the interconnect relies on to cache one
/// multicast tree per distinct destination pattern. The comparison is
/// order-sensitive (`[1, 2] != [2, 1]`); protocols build their node lists in
/// ascending node order, so equivalent sets compare equal in practice, but
/// differently-ordered lists would only cost duplicate cache entries, never
/// wrong routing.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Destination {
    /// Deliver to a single node.
    Node(NodeId),
    /// Deliver to every node except the sender (broadcast).
    Broadcast,
    /// Deliver to an explicit set of nodes.
    Multicast(Arc<[NodeId]>),
}

impl Destination {
    /// Creates a multicast destination from a node list.
    pub fn multicast(nodes: impl Into<Arc<[NodeId]>>) -> Self {
        Destination::Multicast(nodes.into())
    }

    /// Returns `true` if `node` is covered by this destination, given the
    /// original sender (broadcasts do not loop back to the sender).
    pub fn includes(&self, node: NodeId, sender: NodeId) -> bool {
        match self {
            Destination::Node(n) => *n == node,
            Destination::Broadcast => node != sender,
            Destination::Multicast(nodes) => nodes.contains(&node),
        }
    }

    /// Expands the destination into the list of receiving node indices for a
    /// system of `num_nodes` nodes.
    pub fn expand(&self, num_nodes: usize, sender: NodeId) -> Vec<NodeId> {
        match self {
            Destination::Node(n) => vec![*n],
            Destination::Broadcast => (0..num_nodes)
                .map(NodeId::new)
                .filter(|n| *n != sender)
                .collect(),
            Destination::Multicast(nodes) => nodes.to_vec(),
        }
    }
}

/// The kind (opcode + protocol-specific payload) of a coherence message.
///
/// A single enum covers all four protocols so that the interconnect, traffic
/// accounting, and system runner are protocol-agnostic. Each protocol only
/// ever sends and receives the variants it understands.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MsgKind {
    // ------------------------------------------------------------------
    // Requests shared by all protocols (8-byte control messages).
    // ------------------------------------------------------------------
    /// Request for a read-only (shared) copy.
    GetS,
    /// Request for a read/write (modified) copy.
    GetM,
    /// Writeback of an owned/modified block to its home (carries data).
    PutM,
    /// Eviction notice of a shared block (control only; used by Directory).
    PutS,

    // ------------------------------------------------------------------
    // Token Coherence (correctness substrate + TokenB).
    // ------------------------------------------------------------------
    /// Data together with `tokens` tokens; `owner` marks the owner token.
    TokenData {
        /// Number of tokens carried (including the owner token if present).
        tokens: u32,
        /// Whether the owner token is included (invariant #4': implies data).
        owner: bool,
        /// Whether the block was dirty with respect to memory.
        dirty: bool,
        /// Whether the response was sourced by the home memory rather than a
        /// cache (used for cache-to-cache miss accounting).
        from_memory: bool,
        /// Simulated block contents.
        payload: DataPayload,
    },
    /// Dataless transfer of non-owner tokens (like an invalidation ack).
    TokenOnly {
        /// Number of non-owner tokens carried.
        tokens: u32,
    },
    /// A starving node asks the home arbiter to activate a persistent request.
    PersistentRequest {
        /// Whether the requester needs write (all tokens) or read permission.
        write: bool,
    },
    /// The arbiter activates a persistent request on behalf of `requester`.
    PersistentActivate {
        /// Node that will receive all tokens for the block.
        requester: NodeId,
        /// Whether the requester needs write permission.
        write: bool,
    },
    /// The arbiter deactivates the currently active persistent request.
    PersistentDeactivate,
    /// A node acknowledges a persistent activation or deactivation.
    PersistentAck,
    /// The satisfied requester asks the arbiter to deactivate its request.
    PersistentComplete,

    // ------------------------------------------------------------------
    // Directory / Hammer / Snooping responses and forwards.
    // ------------------------------------------------------------------
    /// Data response. `acks_expected` tells the requester how many
    /// invalidation acknowledgements to collect (directory protocol);
    /// `exclusive` grants write permission; `from_memory` marks responses
    /// sourced by the home memory rather than a cache.
    Data {
        /// Number of invalidation acks the requester must still collect.
        acks_expected: u32,
        /// Whether the copy is exclusive (M/E) rather than shared.
        exclusive: bool,
        /// Whether the response came from memory (as opposed to a cache).
        from_memory: bool,
        /// Simulated block contents.
        payload: DataPayload,
    },
    /// Home/directory forwards a GetS to the current owner.
    FwdGetS {
        /// Original requester that the owner must respond to.
        requester: NodeId,
    },
    /// Home/directory forwards a GetM to the current owner.
    FwdGetM {
        /// Original requester that the owner must respond to.
        requester: NodeId,
        /// Number of invalidation acknowledgements the requester must collect
        /// (the home knows the sharer count; the owner copies it into its
        /// data response).
        acks_expected: u32,
    },
    /// Invalidate a shared copy on behalf of `requester`.
    Inv {
        /// Node waiting for the invalidation acknowledgement.
        requester: NodeId,
    },
    /// Acknowledge an invalidation (directory) or a Hammer probe miss.
    InvAck,
    /// Acknowledge a writeback.
    WbAck,
    /// Snooping writeback handshake: the writer observed its own ordered PutM
    /// but no longer holds the block (ownership was taken by a request
    /// ordered before the PutM, or the writer pulled the block back into its
    /// cache), so no writeback data will follow. The home uses this to close
    /// the writeback window the PutM opened. Carries the version of the
    /// cancelled PutM in `req_id` so out-of-order handshakes can be matched.
    WbCancel,
    /// Requester tells the home/directory that its transaction is complete.
    Unblock,
    /// Requester tells the home it now holds the block exclusively.
    ExclusiveUnblock,
    /// Hammer: home broadcasts the original request to all nodes.
    HammerProbe {
        /// Original requester all nodes must respond to.
        requester: NodeId,
        /// Whether the original request was a GetM.
        write: bool,
    },
}

impl MsgKind {
    /// Returns `true` if this message carries a data block (72 bytes).
    pub fn carries_data(&self) -> bool {
        matches!(
            self,
            MsgKind::TokenData { .. } | MsgKind::Data { .. } | MsgKind::PutM
        )
    }

    /// Returns the simulated size of a message of this kind, in bytes.
    pub fn size_bytes(&self) -> u64 {
        if self.carries_data() {
            DATA_MSG_BYTES
        } else {
            CONTROL_MSG_BYTES
        }
    }

    /// Returns the number of tokens carried by this message (zero for
    /// non-token-protocol messages).
    pub fn token_count(&self) -> u32 {
        match self {
            MsgKind::TokenData { tokens, .. } => *tokens,
            MsgKind::TokenOnly { tokens } => *tokens,
            _ => 0,
        }
    }

    /// Returns `true` if this message carries the owner token.
    pub fn carries_owner_token(&self) -> bool {
        matches!(self, MsgKind::TokenData { owner: true, .. })
    }

    /// Short mnemonic used in traces and debugging output.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            MsgKind::GetS => "GetS",
            MsgKind::GetM => "GetM",
            MsgKind::PutM => "PutM",
            MsgKind::PutS => "PutS",
            MsgKind::TokenData { .. } => "TokenData",
            MsgKind::TokenOnly { .. } => "TokenOnly",
            MsgKind::PersistentRequest { .. } => "PersistentRequest",
            MsgKind::PersistentActivate { .. } => "PersistentActivate",
            MsgKind::PersistentDeactivate => "PersistentDeactivate",
            MsgKind::PersistentAck => "PersistentAck",
            MsgKind::PersistentComplete => "PersistentComplete",
            MsgKind::Data { .. } => "Data",
            MsgKind::FwdGetS { .. } => "FwdGetS",
            MsgKind::FwdGetM { .. } => "FwdGetM",
            MsgKind::Inv { .. } => "Inv",
            MsgKind::InvAck => "InvAck",
            MsgKind::WbAck => "WbAck",
            MsgKind::WbCancel => "WbCancel",
            MsgKind::Unblock => "Unblock",
            MsgKind::ExclusiveUnblock => "ExclusiveUnblock",
            MsgKind::HammerProbe { .. } => "HammerProbe",
        }
    }
}

/// A coherence message in flight.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Message {
    /// Node that sent the message.
    pub src: NodeId,
    /// Where the message is going.
    pub dest: Destination,
    /// Block the message concerns.
    pub addr: BlockAddr,
    /// Opcode and payload.
    pub kind: MsgKind,
    /// Virtual network the message travels on.
    pub vnet: Vnet,
    /// Time at which the message was handed to the interconnect.
    pub sent_at: Cycle,
    /// Outstanding-request identifier at the requester, if any. Used to
    /// distinguish responses to reissued transient requests from stale
    /// responses to earlier issues of the same request.
    pub req_id: Option<ReqId>,
    /// Marks a reissued transient request (Token Coherence only), so traffic
    /// accounting can separate reissues from first-issue requests as the
    /// paper's traffic breakdowns do.
    pub reissue: bool,
}

impl Message {
    /// Creates a message. The interconnect fills in timing as it routes it.
    pub fn new(
        src: NodeId,
        dest: Destination,
        addr: BlockAddr,
        kind: MsgKind,
        vnet: Vnet,
        sent_at: Cycle,
    ) -> Self {
        Message {
            src,
            dest,
            addr,
            kind,
            vnet,
            sent_at,
            req_id: None,
            reissue: false,
        }
    }

    /// Attaches an outstanding-request identifier to the message.
    pub fn with_req_id(mut self, req_id: ReqId) -> Self {
        self.req_id = Some(req_id);
        self
    }

    /// Marks this message as a reissued transient request.
    pub fn as_reissue(mut self) -> Self {
        self.reissue = true;
        self
    }

    /// Returns the simulated wire size of the message in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.kind.size_bytes()
    }
}

impl Vnet {
    fn snapshot_tag(self) -> u8 {
        match self {
            Vnet::Request => 0,
            Vnet::Response => 1,
            Vnet::Forwarded => 2,
            Vnet::Persistent => 3,
            Vnet::Writeback => 4,
        }
    }

    fn from_snapshot_tag(tag: u8) -> Result<Vnet, SnapshotError> {
        Ok(match tag {
            0 => Vnet::Request,
            1 => Vnet::Response,
            2 => Vnet::Forwarded,
            3 => Vnet::Persistent,
            4 => Vnet::Writeback,
            other => return Err(SnapshotError::Corrupt(format!("vnet tag {other}"))),
        })
    }
}

impl Destination {
    fn save_state(&self, w: &mut SnapWriter) {
        match self {
            Destination::Node(n) => {
                w.u8(0);
                w.u32(n.index() as u32);
            }
            Destination::Broadcast => w.u8(1),
            Destination::Multicast(nodes) => {
                w.u8(2);
                w.seq(nodes.iter(), |w, n| w.u32(n.index() as u32));
            }
        }
    }

    fn load_state(r: &mut SnapReader<'_>) -> Result<Destination, SnapshotError> {
        Ok(match r.u8()? {
            0 => Destination::Node(NodeId::new(r.u32()? as usize)),
            1 => Destination::Broadcast,
            2 => {
                let nodes = r.seq(|r| Ok(NodeId::new(r.u32()? as usize)))?;
                Destination::Multicast(nodes.into())
            }
            other => return Err(SnapshotError::Corrupt(format!("destination tag {other}"))),
        })
    }
}

impl MsgKind {
    fn save_state(&self, w: &mut SnapWriter) {
        match self {
            MsgKind::GetS => w.u8(0),
            MsgKind::GetM => w.u8(1),
            MsgKind::PutM => w.u8(2),
            MsgKind::PutS => w.u8(3),
            MsgKind::TokenData {
                tokens,
                owner,
                dirty,
                from_memory,
                payload,
            } => {
                w.u8(4);
                w.u32(*tokens);
                w.bool(*owner);
                w.bool(*dirty);
                w.bool(*from_memory);
                w.u64(payload.version);
            }
            MsgKind::TokenOnly { tokens } => {
                w.u8(5);
                w.u32(*tokens);
            }
            MsgKind::PersistentRequest { write } => {
                w.u8(6);
                w.bool(*write);
            }
            MsgKind::PersistentActivate { requester, write } => {
                w.u8(7);
                w.u32(requester.index() as u32);
                w.bool(*write);
            }
            MsgKind::PersistentDeactivate => w.u8(8),
            MsgKind::PersistentAck => w.u8(9),
            MsgKind::PersistentComplete => w.u8(10),
            MsgKind::Data {
                acks_expected,
                exclusive,
                from_memory,
                payload,
            } => {
                w.u8(11);
                w.u32(*acks_expected);
                w.bool(*exclusive);
                w.bool(*from_memory);
                w.u64(payload.version);
            }
            MsgKind::FwdGetS { requester } => {
                w.u8(12);
                w.u32(requester.index() as u32);
            }
            MsgKind::FwdGetM {
                requester,
                acks_expected,
            } => {
                w.u8(13);
                w.u32(requester.index() as u32);
                w.u32(*acks_expected);
            }
            MsgKind::Inv { requester } => {
                w.u8(14);
                w.u32(requester.index() as u32);
            }
            MsgKind::InvAck => w.u8(15),
            MsgKind::WbAck => w.u8(16),
            MsgKind::WbCancel => w.u8(17),
            MsgKind::Unblock => w.u8(18),
            MsgKind::ExclusiveUnblock => w.u8(19),
            MsgKind::HammerProbe { requester, write } => {
                w.u8(20);
                w.u32(requester.index() as u32);
                w.bool(*write);
            }
        }
    }

    fn load_state(r: &mut SnapReader<'_>) -> Result<MsgKind, SnapshotError> {
        Ok(match r.u8()? {
            0 => MsgKind::GetS,
            1 => MsgKind::GetM,
            2 => MsgKind::PutM,
            3 => MsgKind::PutS,
            4 => MsgKind::TokenData {
                tokens: r.u32()?,
                owner: r.bool()?,
                dirty: r.bool()?,
                from_memory: r.bool()?,
                payload: DataPayload::new(r.u64()?),
            },
            5 => MsgKind::TokenOnly { tokens: r.u32()? },
            6 => MsgKind::PersistentRequest { write: r.bool()? },
            7 => MsgKind::PersistentActivate {
                requester: NodeId::new(r.u32()? as usize),
                write: r.bool()?,
            },
            8 => MsgKind::PersistentDeactivate,
            9 => MsgKind::PersistentAck,
            10 => MsgKind::PersistentComplete,
            11 => MsgKind::Data {
                acks_expected: r.u32()?,
                exclusive: r.bool()?,
                from_memory: r.bool()?,
                payload: DataPayload::new(r.u64()?),
            },
            12 => MsgKind::FwdGetS {
                requester: NodeId::new(r.u32()? as usize),
            },
            13 => MsgKind::FwdGetM {
                requester: NodeId::new(r.u32()? as usize),
                acks_expected: r.u32()?,
            },
            14 => MsgKind::Inv {
                requester: NodeId::new(r.u32()? as usize),
            },
            15 => MsgKind::InvAck,
            16 => MsgKind::WbAck,
            17 => MsgKind::WbCancel,
            18 => MsgKind::Unblock,
            19 => MsgKind::ExclusiveUnblock,
            20 => MsgKind::HammerProbe {
                requester: NodeId::new(r.u32()? as usize),
                write: r.bool()?,
            },
            other => return Err(SnapshotError::Corrupt(format!("msg kind tag {other}"))),
        })
    }
}

impl Message {
    /// Serializes the full message into an engine snapshot.
    pub fn save_state(&self, w: &mut SnapWriter) {
        w.u32(self.src.index() as u32);
        self.dest.save_state(w);
        w.u64(self.addr.value());
        self.kind.save_state(w);
        w.u8(self.vnet.snapshot_tag());
        w.u64(self.sent_at);
        w.option(self.req_id, |w, id| w.u64(id.value()));
        w.bool(self.reissue);
    }

    /// Restores [`Message::save_state`] bytes.
    pub fn load_state(r: &mut SnapReader<'_>) -> Result<Message, SnapshotError> {
        Ok(Message {
            src: NodeId::new(r.u32()? as usize),
            dest: Destination::load_state(r)?,
            addr: BlockAddr::new(r.u64()?),
            kind: MsgKind::load_state(r)?,
            vnet: Vnet::from_snapshot_tag(r.u8()?)?,
            sent_at: r.u64()?,
            req_id: r.option(|r| Ok(ReqId::new(r.u64()?)))?,
            reissue: r.bool()?,
        })
    }
}

impl fmt::Display for Message {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} {} -> {:?} @{}",
            self.kind.mnemonic(),
            self.addr,
            self.src,
            self.dest,
            self.sent_at
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg(kind: MsgKind) -> Message {
        Message::new(
            NodeId::new(0),
            Destination::Broadcast,
            BlockAddr::new(7),
            kind,
            Vnet::Request,
            100,
        )
    }

    #[test]
    fn control_messages_are_eight_bytes() {
        assert_eq!(msg(MsgKind::GetS).size_bytes(), CONTROL_MSG_BYTES);
        assert_eq!(msg(MsgKind::GetM).size_bytes(), CONTROL_MSG_BYTES);
        assert_eq!(msg(MsgKind::InvAck).size_bytes(), CONTROL_MSG_BYTES);
        assert_eq!(
            msg(MsgKind::TokenOnly { tokens: 5 }).size_bytes(),
            CONTROL_MSG_BYTES
        );
    }

    #[test]
    fn data_messages_are_seventy_two_bytes() {
        let m = msg(MsgKind::TokenData {
            tokens: 3,
            owner: true,
            dirty: false,
            from_memory: false,
            payload: DataPayload::default(),
        });
        assert_eq!(m.size_bytes(), DATA_MSG_BYTES);
        let d = msg(MsgKind::Data {
            acks_expected: 0,
            exclusive: false,
            from_memory: true,
            payload: DataPayload::default(),
        });
        assert_eq!(d.size_bytes(), DATA_MSG_BYTES);
        assert_eq!(msg(MsgKind::PutM).size_bytes(), DATA_MSG_BYTES);
    }

    #[test]
    fn token_counts_are_reported() {
        assert_eq!(
            MsgKind::TokenData {
                tokens: 4,
                owner: true,
                dirty: true,
                from_memory: false,
                payload: DataPayload::new(1),
            }
            .token_count(),
            4
        );
        assert_eq!(MsgKind::TokenOnly { tokens: 2 }.token_count(), 2);
        assert_eq!(MsgKind::GetS.token_count(), 0);
    }

    #[test]
    fn owner_token_implies_data_in_the_type_system() {
        // Only TokenData can carry the owner token, and TokenData always
        // carries data: invariant #4' is structural.
        let with_owner = MsgKind::TokenData {
            tokens: 1,
            owner: true,
            dirty: false,
            from_memory: false,
            payload: DataPayload::default(),
        };
        assert!(with_owner.carries_owner_token());
        assert!(with_owner.carries_data());
        assert!(!MsgKind::TokenOnly { tokens: 3 }.carries_owner_token());
    }

    #[test]
    fn destination_includes_and_expand_agree() {
        let sender = NodeId::new(2);
        let bcast = Destination::Broadcast;
        let expanded = bcast.expand(4, sender);
        assert_eq!(expanded.len(), 3);
        for n in 0..4 {
            let node = NodeId::new(n);
            assert_eq!(bcast.includes(node, sender), expanded.contains(&node));
        }

        let ucast = Destination::Node(NodeId::new(1));
        assert!(ucast.includes(NodeId::new(1), sender));
        assert!(!ucast.includes(NodeId::new(0), sender));
        assert_eq!(ucast.expand(4, sender), vec![NodeId::new(1)]);

        let mcast = Destination::multicast(vec![NodeId::new(0), NodeId::new(3)]);
        assert!(mcast.includes(NodeId::new(3), sender));
        assert!(!mcast.includes(NodeId::new(1), sender));
        assert_eq!(mcast.expand(4, sender).len(), 2);
    }

    #[test]
    fn req_id_builder_attaches_identifier() {
        let m = msg(MsgKind::GetS).with_req_id(ReqId::new(9));
        assert_eq!(m.req_id, Some(ReqId::new(9)));
    }

    #[test]
    fn message_snapshot_round_trips_every_kind() {
        let kinds = [
            MsgKind::GetS,
            MsgKind::GetM,
            MsgKind::PutM,
            MsgKind::PutS,
            MsgKind::TokenData {
                tokens: 3,
                owner: true,
                dirty: true,
                from_memory: false,
                payload: DataPayload::new(42),
            },
            MsgKind::TokenOnly { tokens: 2 },
            MsgKind::PersistentRequest { write: true },
            MsgKind::PersistentActivate {
                requester: NodeId::new(3),
                write: false,
            },
            MsgKind::PersistentDeactivate,
            MsgKind::PersistentAck,
            MsgKind::PersistentComplete,
            MsgKind::Data {
                acks_expected: 2,
                exclusive: true,
                from_memory: true,
                payload: DataPayload::new(7),
            },
            MsgKind::FwdGetS {
                requester: NodeId::new(1),
            },
            MsgKind::FwdGetM {
                requester: NodeId::new(2),
                acks_expected: 3,
            },
            MsgKind::Inv {
                requester: NodeId::new(0),
            },
            MsgKind::InvAck,
            MsgKind::WbAck,
            MsgKind::WbCancel,
            MsgKind::Unblock,
            MsgKind::ExclusiveUnblock,
            MsgKind::HammerProbe {
                requester: NodeId::new(1),
                write: true,
            },
        ];
        let dests = [
            Destination::Node(NodeId::new(2)),
            Destination::Broadcast,
            Destination::multicast(vec![NodeId::new(0), NodeId::new(3)]),
        ];
        for (i, kind) in kinds.into_iter().enumerate() {
            let mut m = Message::new(
                NodeId::new(i % 4),
                dests[i % dests.len()].clone(),
                BlockAddr::new(64 + i as u64),
                kind,
                Vnet::ALL[i % Vnet::ALL.len()],
                1000 + i as u64,
            );
            if i % 2 == 0 {
                m = m.with_req_id(ReqId::new(900 + i as u64));
            }
            if i % 3 == 0 {
                m = m.as_reissue();
            }
            let mut w = SnapWriter::new();
            m.save_state(&mut w);
            let bytes = w.into_bytes();
            let mut r = SnapReader::new(&bytes);
            let back = Message::load_state(&mut r).unwrap();
            r.finish().unwrap();
            assert_eq!(m, back);
        }
    }

    #[test]
    fn message_load_rejects_unknown_tags() {
        let mut w = SnapWriter::new();
        w.u32(0); // src
        w.u8(9); // bogus destination tag
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        assert!(Message::load_state(&mut r).is_err());
    }

    #[test]
    fn mnemonics_are_distinct_for_common_kinds() {
        let kinds = [
            MsgKind::GetS,
            MsgKind::GetM,
            MsgKind::PutM,
            MsgKind::InvAck,
            MsgKind::Unblock,
        ];
        let mut names: Vec<_> = kinds.iter().map(|k| k.mnemonic()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), kinds.len());
    }
}
