//! Job vocabulary for the campaign service: identifiers, priorities, and
//! lifecycle states.
//!
//! These types are the wire vocabulary between `tc-serve` and its clients,
//! so every one of them has a stable `Display` form and a matching `parse`
//! (round-trips pinned by tests), the same contract the fault and adversary
//! specs follow.

use std::fmt;

/// A server-assigned job identifier, printed as `job-<n>`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct JobId(pub u64);

impl JobId {
    /// Parses the `job-<n>` form.
    ///
    /// # Errors
    ///
    /// Returns a message naming the malformed input.
    pub fn parse(text: &str) -> Result<JobId, String> {
        let digits = text
            .strip_prefix("job-")
            .ok_or_else(|| format!("job id `{text}` is not job-<n>"))?;
        digits
            .parse()
            .map(JobId)
            .map_err(|_| format!("job id `{text}` is not job-<n>"))
    }
}

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job-{}", self.0)
    }
}

/// Scheduling priority of a submitted job. Higher priorities are dequeued
/// first; within a priority, submission order wins (FIFO).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum JobPriority {
    /// Background work: sweeps nobody is waiting on.
    Low,
    /// The default.
    #[default]
    Normal,
    /// Interactive work: jump the queue.
    High,
}

impl JobPriority {
    /// Canonical lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            JobPriority::Low => "low",
            JobPriority::Normal => "normal",
            JobPriority::High => "high",
        }
    }

    /// Parses a priority name (case-insensitive).
    ///
    /// # Errors
    ///
    /// Returns a message listing the accepted names.
    pub fn parse(text: &str) -> Result<JobPriority, String> {
        match text.to_ascii_lowercase().as_str() {
            "low" => Ok(JobPriority::Low),
            "normal" => Ok(JobPriority::Normal),
            "high" => Ok(JobPriority::High),
            other => Err(format!(
                "unknown priority `{other}` (expected low, normal, or high)"
            )),
        }
    }
}

impl fmt::Display for JobPriority {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Lifecycle state of a job on the server.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JobState {
    /// Accepted and waiting in the priority queue.
    Queued,
    /// Claimed by a worker and executing.
    Running,
    /// Every point completed (cached or freshly run).
    Done,
    /// Execution failed (a point panicked); the queue keeps serving.
    Failed,
}

impl JobState {
    /// Canonical lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
        }
    }

    /// Parses a state name (case-insensitive).
    ///
    /// # Errors
    ///
    /// Returns a message listing the accepted names.
    pub fn parse(text: &str) -> Result<JobState, String> {
        match text.to_ascii_lowercase().as_str() {
            "queued" => Ok(JobState::Queued),
            "running" => Ok(JobState::Running),
            "done" => Ok(JobState::Done),
            "failed" => Ok(JobState::Failed),
            other => Err(format!(
                "unknown job state `{other}` (expected queued, running, done, or failed)"
            )),
        }
    }
}

impl fmt::Display for JobState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_ids_round_trip() {
        for n in [0u64, 1, 17, u64::MAX] {
            let id = JobId(n);
            assert_eq!(JobId::parse(&id.to_string()), Ok(id));
        }
        assert!(JobId::parse("job-").is_err());
        assert!(JobId::parse("7").is_err());
        assert!(JobId::parse("job-x").is_err());
    }

    #[test]
    fn priorities_round_trip_and_order() {
        for p in [JobPriority::Low, JobPriority::Normal, JobPriority::High] {
            assert_eq!(JobPriority::parse(&p.to_string()), Ok(p));
        }
        assert_eq!(JobPriority::parse("HIGH"), Ok(JobPriority::High));
        assert!(JobPriority::parse("urgent").is_err());
        assert!(JobPriority::Low < JobPriority::Normal);
        assert!(JobPriority::Normal < JobPriority::High);
        assert_eq!(JobPriority::default(), JobPriority::Normal);
    }

    #[test]
    fn states_round_trip() {
        for s in [
            JobState::Queued,
            JobState::Running,
            JobState::Done,
            JobState::Failed,
        ] {
            assert_eq!(JobState::parse(&s.to_string()), Ok(s));
        }
        assert!(JobState::parse("paused").is_err());
    }
}
