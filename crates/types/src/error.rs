//! Error and invariant-violation types.

use std::error::Error;
use std::fmt;

use crate::addr::BlockAddr;
use crate::ids::{Cycle, NodeId};

/// A system configuration was internally inconsistent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    message: String,
}

impl ConfigError {
    /// Creates a configuration error with a human-readable explanation.
    pub fn new(message: impl Into<String>) -> Self {
        ConfigError {
            message: message.into(),
        }
    }

    /// The explanation of what was inconsistent.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid configuration: {}", self.message)
    }
}

impl Error for ConfigError {}

/// A violation of one of the correctness-substrate invariants (or of the
/// coherence safety property), detected by the verification layer.
///
/// The whole point of Token Coherence is that these can never occur no matter
/// what the performance protocol does; the verification layer exists to check
/// that claim mechanically during simulation and in the test suite.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InvariantViolation {
    /// The total number of tokens for a block changed (invariant #1').
    TokenConservation {
        /// Block whose tokens were miscounted.
        addr: BlockAddr,
        /// Expected total token count `T`.
        expected: u32,
        /// Observed total token count.
        found: u32,
        /// Time of the audit.
        at: Cycle,
    },
    /// More than one owner token exists for a block (invariant #1').
    DuplicateOwner {
        /// Block with duplicate owner tokens.
        addr: BlockAddr,
        /// Time of the audit.
        at: Cycle,
    },
    /// A node wrote a block without holding all tokens / exclusive permission
    /// (invariant #2').
    WriteWithoutExclusive {
        /// Offending node.
        node: NodeId,
        /// Block that was written.
        addr: BlockAddr,
        /// Tokens (or sharers) held at the time.
        held: u32,
        /// Tokens required.
        required: u32,
        /// Time of the write.
        at: Cycle,
    },
    /// A node read a block without holding a token / valid copy
    /// (invariant #3').
    ReadWithoutToken {
        /// Offending node.
        node: NodeId,
        /// Block that was read.
        addr: BlockAddr,
        /// Time of the read.
        at: Cycle,
    },
    /// A message carried the owner token without data (invariant #4').
    OwnerTokenWithoutData {
        /// Block concerned.
        addr: BlockAddr,
        /// Time the message was sent.
        at: Cycle,
    },
    /// A load observed a value other than the one written by the most recent
    /// store (the single-writer/valid-data safety property).
    StaleDataRead {
        /// Node that performed the load.
        node: NodeId,
        /// Block that was read.
        addr: BlockAddr,
        /// Version of the data the load observed.
        observed_version: u64,
        /// Version the verification layer expected.
        expected_version: u64,
        /// Time of the load.
        at: Cycle,
    },
    /// A request never completed within the starvation bound.
    Starvation {
        /// Node whose request starved.
        node: NodeId,
        /// Block being requested.
        addr: BlockAddr,
        /// Time the request was issued.
        issued_at: Cycle,
        /// Time of the audit that declared starvation.
        at: Cycle,
        /// How long the request had been waiting when starvation was
        /// declared (`at - issued_at`, in cycles). Carried explicitly so
        /// journal records and fairness reports need no re-derivation.
        waited: Cycle,
    },
    /// The run made no forward progress for an entire event budget: events
    /// kept flowing (so the drain-limit deadlock detector never fired) but
    /// no operation completed — the livelock the paper's persistent
    /// requests exist to rule out.
    Livelock {
        /// Node whose request was outstanding when the watchdog tripped.
        node: NodeId,
        /// Block that request is for.
        addr: BlockAddr,
        /// Time the stuck request was issued.
        issued_at: Cycle,
        /// Time the watchdog tripped.
        at: Cycle,
        /// Events processed since the last completed operation.
        events_without_progress: u64,
    },
    /// The run hit its drain limit with requests still outstanding: the
    /// protocol wedged (a request was stranded with no message, timer, or
    /// event left that could ever complete it).
    Deadlock {
        /// Node whose request is stuck.
        node: NodeId,
        /// Block the stuck request is for.
        addr: BlockAddr,
        /// Time the stuck request was issued.
        issued_at: Cycle,
        /// Time the drain limit was hit.
        at: Cycle,
    },
}

impl fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InvariantViolation::TokenConservation {
                addr,
                expected,
                found,
                at,
            } => write!(
                f,
                "token conservation violated for {addr}: expected {expected} tokens, found {found} at cycle {at}"
            ),
            InvariantViolation::DuplicateOwner { addr, at } => {
                write!(f, "duplicate owner token for {addr} at cycle {at}")
            }
            InvariantViolation::WriteWithoutExclusive {
                node,
                addr,
                held,
                required,
                at,
            } => write!(
                f,
                "{node} wrote {addr} holding {held}/{required} tokens at cycle {at}"
            ),
            InvariantViolation::ReadWithoutToken { node, addr, at } => {
                write!(f, "{node} read {addr} without a token at cycle {at}")
            }
            InvariantViolation::OwnerTokenWithoutData { addr, at } => {
                write!(f, "owner token for {addr} sent without data at cycle {at}")
            }
            InvariantViolation::StaleDataRead {
                node,
                addr,
                observed_version,
                expected_version,
                at,
            } => write!(
                f,
                "{node} read stale data for {addr}: observed v{observed_version}, expected v{expected_version} at cycle {at}"
            ),
            InvariantViolation::Starvation {
                node,
                addr,
                issued_at,
                at,
                waited,
            } => write!(
                f,
                "{node} starved on {addr}: issued at cycle {issued_at}, still incomplete after \
                 waiting {waited} cycles at cycle {at}"
            ),
            InvariantViolation::Livelock {
                node,
                addr,
                issued_at,
                at,
                events_without_progress,
            } => write!(
                f,
                "livelock: {events_without_progress} events without progress; {node} stuck on \
                 {addr} (issued at cycle {issued_at}) when the watchdog tripped at cycle {at} \
                 (rerun with TC_TRACE_BLOCK={} for the causal trace)",
                addr.value()
            ),
            InvariantViolation::Deadlock {
                node,
                addr,
                issued_at,
                at,
            } => write!(
                f,
                "deadlock: {node} stuck on {addr} (issued at cycle {issued_at}) when the drain \
                 limit was hit at cycle {at}"
            ),
        }
    }
}

impl Error for InvariantViolation {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_error_displays_message() {
        let e = ConfigError::new("bad thing");
        assert_eq!(e.to_string(), "invalid configuration: bad thing");
        assert_eq!(e.message(), "bad thing");
    }

    #[test]
    fn violations_display_useful_context() {
        let v = InvariantViolation::TokenConservation {
            addr: BlockAddr::new(5),
            expected: 16,
            found: 15,
            at: 100,
        };
        let text = v.to_string();
        assert!(text.contains("16"));
        assert!(text.contains("15"));
        assert!(text.contains("cycle 100"));

        let v = InvariantViolation::StaleDataRead {
            node: NodeId::new(2),
            addr: BlockAddr::new(9),
            observed_version: 3,
            expected_version: 4,
            at: 77,
        };
        assert!(v.to_string().contains("stale"));
    }

    #[test]
    fn violations_are_std_errors() {
        fn takes_error(_: &dyn Error) {}
        takes_error(&ConfigError::new("x"));
        takes_error(&InvariantViolation::DuplicateOwner {
            addr: BlockAddr::new(1),
            at: 0,
        });
    }
}
