//! The coherence-controller API.
//!
//! Every protocol (TokenB, Snooping, Directory, Hammer) implements the
//! [`CoherenceController`] trait. The system runner drives controllers with
//! three kinds of events — processor accesses, message deliveries, and timer
//! expirations — and the controller communicates back through an [`Outbox`]:
//! messages to inject into the interconnect, completed misses to hand back to
//! the processor, and timers to arm.

use std::fmt;

use tc_sim::snapshot::{SnapReader, SnapWriter, SnapshotError};

use crate::addr::BlockAddr;
use crate::ids::{Cycle, NodeId, ReqId};
use crate::memop::MemOp;
use crate::message::Message;
use crate::stats::{ControllerStats, LineStateStats};

/// How a processor access was satisfied (or not) by the local cache
/// hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessOutcome {
    /// The access hit locally; the processor sees `latency` cycles.
    Hit {
        /// Total hit latency in cycles (L1 or L1+L2).
        latency: Cycle,
        /// Version of the block contents observed (loads) or produced
        /// (stores), used by the verification layer.
        version: u64,
        /// Earliest instant at which the observed value may legally be
        /// considered current — the serialization lower bound of the copy
        /// the hit was served from. Protocols whose copies are protected by
        /// acknowledgements (directory, hammer) or token counting (TokenB)
        /// report the access time itself: their hits are wall-clock fresh.
        /// Unacknowledged snooping reports the fill transaction's issue
        /// time: a copy installed from an earlier point in the broadcast
        /// total order may legally serve a value that a later-ordered (but
        /// earlier-completing) remote write has already superseded, until
        /// the invalidating broadcast arrives here.
        valid_since: Cycle,
    },
    /// The access missed; a [`MissCompletion`] with the same [`ReqId`] will be
    /// delivered through the outbox when the protocol has obtained the block.
    Miss,
}

/// What kind of miss a completed request was.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MissKind {
    /// A load (or instruction fetch) that missed.
    Read,
    /// A store that missed with no local copy at all.
    Write,
    /// A store that hit a read-only copy and needed an upgrade.
    Upgrade,
}

/// Notification that an outstanding miss has completed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MissCompletion {
    /// The processor request this completes.
    pub req_id: ReqId,
    /// The block concerned.
    pub addr: BlockAddr,
    /// What kind of miss it was.
    pub kind: MissKind,
    /// When the miss was issued to the protocol.
    pub issued_at: Cycle,
    /// When the miss completed.
    pub completed_at: Cycle,
    /// Version of the block contents observed (reads) or produced (writes).
    pub data_version: u64,
    /// Whether the data came from another processor's cache.
    pub cache_to_cache: bool,
}

impl MissCompletion {
    /// Latency of the miss in cycles.
    pub fn latency(&self) -> Cycle {
        self.completed_at.saturating_sub(self.issued_at)
    }
}

/// Why a controller timer was armed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TimerKind {
    /// Reissue a transient request that has not completed (TokenB).
    Reissue,
    /// Escalate a starving transient request to a persistent request (TokenB).
    PersistentEscalation,
    /// Memory/DRAM access completes (used by home controllers).
    MemoryAccess,
    /// Protocol-specific timer.
    Other(u32),
}

/// A timer armed by a controller; delivered back via
/// [`CoherenceController::handle_timer`] when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Timer {
    /// Identifier chosen by the controller (opaque to the runner).
    pub id: u64,
    /// Block the timer concerns.
    pub addr: BlockAddr,
    /// Why the timer was armed.
    pub kind: TimerKind,
}

/// Collects the outputs of one controller invocation.
#[derive(Debug, Default)]
pub struct Outbox {
    /// Messages to hand to the interconnect.
    pub messages: Vec<Message>,
    /// Miss completions to hand back to the processor.
    pub completions: Vec<MissCompletion>,
    /// Timers to arm: (absolute firing time, timer).
    pub timers: Vec<(Cycle, Timer)>,
}

impl Outbox {
    /// Creates an empty outbox.
    pub fn new() -> Self {
        Outbox::default()
    }

    /// Queues a message for the interconnect.
    pub fn send(&mut self, msg: Message) {
        self.messages.push(msg);
    }

    /// Queues a miss completion for the processor.
    pub fn complete(&mut self, completion: MissCompletion) {
        self.completions.push(completion);
    }

    /// Arms a timer to fire at the absolute time `at`.
    pub fn arm_timer(&mut self, at: Cycle, timer: Timer) {
        self.timers.push((at, timer));
    }

    /// Returns `true` if nothing was produced.
    pub fn is_empty(&self) -> bool {
        self.messages.is_empty() && self.completions.is_empty() && self.timers.is_empty()
    }

    /// Moves everything out of this outbox, leaving it empty.
    pub fn drain(&mut self) -> Outbox {
        Outbox {
            messages: std::mem::take(&mut self.messages),
            completions: std::mem::take(&mut self.completions),
            timers: std::mem::take(&mut self.timers),
        }
    }
}

/// A snapshot of one node's coherence state for a block, used by the
/// verification layer to audit global invariants (token conservation,
/// single-writer/multiple-reader) without knowing protocol internals.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BlockAudit {
    /// Tokens held for the block (Token Coherence; 0 for other protocols).
    pub tokens: u32,
    /// Whether the owner token is held.
    pub owner_token: bool,
    /// Whether the node currently has read permission for the block.
    pub readable: bool,
    /// Whether the node currently has write permission for the block.
    pub writable: bool,
    /// Version of the data held (meaningful only if `readable`).
    pub data_version: u64,
    /// Whether this snapshot comes from the node's memory (home) rather than
    /// its cache.
    pub in_memory: bool,
}

/// The interface every coherence protocol implements.
///
/// One controller instance exists per node and plays both the cache-side role
/// (servicing its processor) and the home/memory-side role (servicing the
/// slice of physical memory homed at this node), because the target system
/// integrates both on one chip.
pub trait CoherenceController: fmt::Debug + Send {
    /// The node this controller belongs to.
    fn node(&self) -> NodeId;

    /// A short protocol name for reports (for example `"TokenB"`).
    fn protocol_name(&self) -> &'static str;

    /// The processor asks for `op` to be performed. Returns whether it hit
    /// locally; on a miss the controller takes ownership of the request and
    /// must eventually deliver a [`MissCompletion`] with the same [`ReqId`].
    fn access(&mut self, now: Cycle, op: &MemOp, out: &mut Outbox) -> AccessOutcome;

    /// A message addressed to this node arrives from the interconnect.
    ///
    /// The message is borrowed, not owned: a multicast parks one payload in
    /// the runner's arena and every destination handles the same copy, so a
    /// controller that needs to keep any part of it clones just that part.
    fn handle_message(&mut self, now: Cycle, msg: &Message, out: &mut Outbox);

    /// A timer armed by this controller fires.
    fn handle_timer(&mut self, now: Cycle, timer: Timer, out: &mut Outbox);

    /// Statistics accumulated so far.
    fn stats(&self) -> ControllerStats;

    /// Audits this node's state for `addr` (cache contents plus, if this node
    /// is the block's home, the memory's contribution).
    fn audit_block(&self, addr: BlockAddr) -> Vec<BlockAudit>;

    /// Every block this node currently holds state for (cache lines plus
    /// home-memory entries that differ from the initial all-tokens-at-home
    /// state). Used by the verifier to bound its audit.
    fn audited_blocks(&self) -> Vec<BlockAddr>;

    /// Number of misses currently outstanding at this node.
    fn outstanding_misses(&self) -> usize;

    /// The blocks of the misses currently outstanding at this node, used by
    /// the deadlock/starvation audit to report *which* block a stuck
    /// requester is waiting on.
    fn outstanding_blocks(&self) -> Vec<BlockAddr> {
        Vec::new()
    }

    /// Per-structure occupancy peaks and estimated byte footprint of this
    /// node's sparse line-state plane (MSHRs, writeback buffer/windows, home
    /// state, persistent entries). The runner sums these across nodes into
    /// [`crate::EngineStats`]. The default reports nothing, so experimental
    /// controllers that do not use the shared plane stay compilable.
    fn line_state_stats(&self) -> LineStateStats {
        LineStateStats::default()
    }

    /// Test-only sabotage hook: when enabled, this node's persistent-request
    /// arbitration silently drops incoming requests, manufacturing exactly
    /// the starvation the fairness oracle exists to catch. The default does
    /// nothing — only protocols with persistent-request machinery (TokenB)
    /// override it, and nothing outside the adversarial test harness should
    /// ever enable it.
    fn set_arbiter_sabotage(&mut self, on: bool) {
        let _ = on;
    }

    /// Serializes this controller's *mutable* state into an engine snapshot
    /// (see `tc_sim::snapshot`). Config-derived state (latencies, home
    /// maps, capacities, geometry) is rebuilt by construction and must not
    /// be written here.
    ///
    /// The default writes nothing, which is only correct for a controller
    /// with no mutable state beyond construction. Every real protocol must
    /// override both this and [`CoherenceController::load_state`] — the
    /// restore-equivalence contract (a resumed run's `RunReport` is
    /// bit-identical to the uninterrupted run) depends on it.
    fn save_state(&self, w: &mut SnapWriter) {
        let _ = w;
    }

    /// Restores state produced by [`CoherenceController::save_state`] onto
    /// a freshly-constructed controller of the same configuration.
    fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapshotError> {
        let _ = r;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::BlockAddr;

    #[test]
    fn outbox_accumulates_and_drains() {
        let mut out = Outbox::new();
        assert!(out.is_empty());
        out.arm_timer(
            100,
            Timer {
                id: 1,
                addr: BlockAddr::new(2),
                kind: TimerKind::Reissue,
            },
        );
        out.complete(MissCompletion {
            req_id: ReqId::new(1),
            addr: BlockAddr::new(2),
            kind: MissKind::Read,
            issued_at: 10,
            completed_at: 60,
            data_version: 0,
            cache_to_cache: true,
        });
        assert!(!out.is_empty());
        let drained = out.drain();
        assert!(out.is_empty());
        assert_eq!(drained.timers.len(), 1);
        assert_eq!(drained.completions.len(), 1);
    }

    #[test]
    fn miss_completion_latency_is_saturating() {
        let c = MissCompletion {
            req_id: ReqId::new(1),
            addr: BlockAddr::new(0),
            kind: MissKind::Write,
            issued_at: 100,
            completed_at: 250,
            data_version: 1,
            cache_to_cache: false,
        };
        assert_eq!(c.latency(), 150);
        let degenerate = MissCompletion {
            completed_at: 50,
            ..c
        };
        assert_eq!(degenerate.latency(), 0);
    }

    #[test]
    fn block_audit_default_is_inert() {
        let a = BlockAudit::default();
        assert_eq!(a.tokens, 0);
        assert!(!a.readable && !a.writable && !a.owner_token);
    }
}
