//! System configuration, with defaults matching Table 1 of the paper.

use std::fmt;

use crate::error::ConfigError;

/// Which coherence protocol a system instance runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProtocolKind {
    /// Token Coherence with the TokenB broadcast performance protocol
    /// (the paper's contribution).
    TokenB,
    /// Traditional MOSI split-transaction snooping; requires the
    /// totally-ordered tree interconnect.
    Snooping,
    /// Full-map MOSI directory protocol (Origin 2000 / Alpha 21364 style).
    Directory,
    /// AMD-Hammer-style protocol: request to home, home broadcasts, every
    /// node responds to the requester.
    Hammer,
}

impl ProtocolKind {
    /// All protocols evaluated in the paper.
    pub const ALL: [ProtocolKind; 4] = [
        ProtocolKind::TokenB,
        ProtocolKind::Snooping,
        ProtocolKind::Directory,
        ProtocolKind::Hammer,
    ];

    /// Returns `true` if the protocol requires a totally-ordered interconnect.
    pub fn requires_total_order(self) -> bool {
        matches!(self, ProtocolKind::Snooping)
    }

    /// Human-readable name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            ProtocolKind::TokenB => "TokenB",
            ProtocolKind::Snooping => "Snooping",
            ProtocolKind::Directory => "Directory",
            ProtocolKind::Hammer => "Hammer",
        }
    }

    /// Looks a kind up by (case-insensitive) name; the inverse of
    /// [`ProtocolKind::name`], used by command-line protocol filters.
    pub fn by_name(name: &str) -> Option<ProtocolKind> {
        ProtocolKind::ALL
            .into_iter()
            .find(|kind| kind.name().eq_ignore_ascii_case(name))
    }
}

impl fmt::Display for ProtocolKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Interconnect topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TopologyKind {
    /// Two-level pipelined broadcast tree with a single root switch; provides
    /// a total order of requests (Figure 1a). Four link crossings between any
    /// pair of nodes.
    Tree,
    /// Two-dimensional bidirectional torus; directly connected, unordered
    /// (Figure 1b). Two link crossings on average for 16 nodes.
    Torus,
}

impl TopologyKind {
    /// Returns `true` if this topology delivers broadcasts in a total order.
    pub fn is_totally_ordered(self) -> bool {
        matches!(self, TopologyKind::Tree)
    }

    /// Human-readable name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            TopologyKind::Tree => "Tree",
            TopologyKind::Torus => "Torus",
        }
    }
}

impl fmt::Display for TopologyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Whether link bandwidth is modelled or treated as infinite.
///
/// The paper reports runtimes both with the 3.2 GB/s links of Table 1 and
/// with unlimited bandwidth, to separate latency effects from contention
/// effects (Figures 4a and 5a).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BandwidthMode {
    /// Model link serialization and contention at the configured bandwidth.
    Limited,
    /// Links never serialize or queue (latency-only model).
    Unlimited,
}

/// How the directory protocol stores its directory state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DirectoryMode {
    /// Directory state lives in main-memory DRAM: every directory access
    /// pays the DRAM latency (the base system in the paper).
    InDram,
    /// A "perfect" directory cache: zero-cycle directory access.
    Perfect,
}

/// Parameters of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity (ways per set).
    pub associativity: usize,
    /// Access latency in nanoseconds.
    pub latency_ns: u64,
}

impl CacheConfig {
    /// Number of sets for a given block size.
    ///
    /// # Panics
    ///
    /// Panics if the geometry does not divide evenly.
    pub fn num_sets(&self, block_bytes: u64) -> usize {
        let lines = self.size_bytes / block_bytes;
        assert!(
            lines.is_multiple_of(self.associativity as u64),
            "cache of {} lines is not divisible into {}-way sets",
            lines,
            self.associativity
        );
        (lines / self.associativity as u64) as usize
    }
}

/// Interconnect parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InterconnectConfig {
    /// Topology to instantiate.
    pub topology: TopologyKind,
    /// Link bandwidth in bytes per nanosecond (3.2 GB/s = 3.2 bytes/ns).
    pub link_bandwidth_bytes_per_ns: f64,
    /// Per-link latency in nanoseconds (wire + synchronization + routing).
    pub link_latency_ns: u64,
    /// Whether bandwidth is modelled.
    pub bandwidth: BandwidthMode,
}

/// Processor model parameters.
///
/// The paper uses a 4-wide, 11-stage, dynamically scheduled core. Our
/// processor model is a miss-overlap model: it issues memory operations from
/// the workload stream in order, hides cache-hit latency behind computation,
/// and allows up to `max_outstanding_misses` misses to overlap within a
/// reorder window, which reproduces the memory-level parallelism that matters
/// for protocol comparisons.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProcessorConfig {
    /// Maximum number of outstanding cache misses (MSHRs).
    pub max_outstanding_misses: usize,
    /// Number of subsequent memory operations the core may issue past an
    /// outstanding miss before stalling (models the reorder window).
    pub overlap_window: usize,
    /// Memory operations per simulated "transaction" (unit of work used to
    /// report normalized runtime, as in the paper's cycles-per-transaction).
    pub ops_per_transaction: usize,
}

impl Default for ProcessorConfig {
    fn default() -> Self {
        ProcessorConfig {
            max_outstanding_misses: 4,
            overlap_window: 16,
            ops_per_transaction: 250,
        }
    }
}

/// Token-Coherence-specific tuning parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TokenConfig {
    /// Tokens per block, `T`. Must be at least the number of processors.
    pub tokens_per_block: u32,
    /// Number of reissued transient requests before escalating to a
    /// persistent request (the paper uses approximately 4).
    pub reissues_before_persistent: u32,
    /// Multiplier applied to the recent average miss latency when computing
    /// the reissue timeout (the paper uses 2x).
    pub reissue_latency_multiplier: f64,
    /// Multiplier applied to the recent average miss latency for the
    /// persistent-request timeout (the paper uses roughly 10x).
    pub persistent_latency_multiplier: f64,
    /// Whether the migratory-sharing optimization is enabled.
    pub migratory_optimization: bool,
}

impl Default for TokenConfig {
    fn default() -> Self {
        TokenConfig {
            tokens_per_block: 16,
            reissues_before_persistent: 4,
            reissue_latency_multiplier: 2.0,
            persistent_latency_multiplier: 10.0,
            migratory_optimization: true,
        }
    }
}

/// Full system configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemConfig {
    /// Number of nodes (processor + caches + memory slice per node).
    pub num_nodes: usize,
    /// Cache block size in bytes.
    pub block_bytes: u64,
    /// Split L1 instruction/data cache parameters (each).
    pub l1: CacheConfig,
    /// Unified L2 cache parameters.
    pub l2: CacheConfig,
    /// DRAM access latency in nanoseconds (also the directory lookup latency
    /// when the directory lives in DRAM).
    pub dram_latency_ns: u64,
    /// Memory / directory controller occupancy per message, in nanoseconds.
    pub controller_latency_ns: u64,
    /// Interconnect parameters.
    pub interconnect: InterconnectConfig,
    /// Processor model parameters.
    pub processor: ProcessorConfig,
    /// Coherence protocol to run.
    pub protocol: ProtocolKind,
    /// Directory implementation (ignored by other protocols).
    pub directory_mode: DirectoryMode,
    /// Token Coherence tuning (ignored by other protocols).
    pub token: TokenConfig,
    /// Deterministic seed for workload generation and randomized backoff.
    pub seed: u64,
}

impl SystemConfig {
    /// The 16-processor target system of the paper (Table 1), running TokenB
    /// on the torus interconnect with limited bandwidth.
    pub fn isca03_default() -> Self {
        SystemConfig {
            num_nodes: 16,
            block_bytes: 64,
            l1: CacheConfig {
                size_bytes: 128 * 1024,
                associativity: 4,
                latency_ns: 2,
            },
            l2: CacheConfig {
                size_bytes: 4 * 1024 * 1024,
                associativity: 4,
                latency_ns: 6,
            },
            dram_latency_ns: 80,
            controller_latency_ns: 6,
            interconnect: InterconnectConfig {
                topology: TopologyKind::Torus,
                link_bandwidth_bytes_per_ns: 3.2,
                link_latency_ns: 15,
                bandwidth: BandwidthMode::Limited,
            },
            processor: ProcessorConfig::default(),
            protocol: ProtocolKind::TokenB,
            directory_mode: DirectoryMode::InDram,
            token: TokenConfig::default(),
            seed: 0x5eed_1503,
        }
    }

    /// Returns a copy configured for the given protocol, selecting the
    /// interconnect the paper pairs it with by default (Snooping on the
    /// ordered tree, everything else on the torus).
    pub fn with_protocol(mut self, protocol: ProtocolKind) -> Self {
        self.protocol = protocol;
        if protocol.requires_total_order() {
            self.interconnect.topology = TopologyKind::Tree;
        }
        self
    }

    /// Returns a copy with a different interconnect topology.
    pub fn with_topology(mut self, topology: TopologyKind) -> Self {
        self.interconnect.topology = topology;
        self
    }

    /// Returns a copy with the given bandwidth mode.
    pub fn with_bandwidth(mut self, bandwidth: BandwidthMode) -> Self {
        self.interconnect.bandwidth = bandwidth;
        self
    }

    /// Returns a copy with a different node count, growing the token count
    /// if necessary so that `T >= num_nodes`.
    pub fn with_nodes(mut self, num_nodes: usize) -> Self {
        self.num_nodes = num_nodes;
        if (self.token.tokens_per_block as usize) < num_nodes {
            self.token.tokens_per_block = num_nodes as u32;
        }
        self
    }

    /// Returns a copy with a different random seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Validates cross-parameter constraints.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if the configuration is internally
    /// inconsistent (for example, snooping on an unordered interconnect, or
    /// fewer tokens than processors).
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.num_nodes == 0 {
            return Err(ConfigError::new("system must have at least one node"));
        }
        if !self.block_bytes.is_power_of_two() {
            return Err(ConfigError::new("block size must be a power of two"));
        }
        if self.protocol.requires_total_order() && !self.interconnect.topology.is_totally_ordered()
        {
            return Err(ConfigError::new(
                "traditional snooping requires the totally-ordered tree interconnect",
            ));
        }
        if self.protocol == ProtocolKind::TokenB
            && (self.token.tokens_per_block as usize) < self.num_nodes
        {
            return Err(ConfigError::new(
                "tokens per block must be at least the number of processors",
            ));
        }
        if self.interconnect.link_bandwidth_bytes_per_ns <= 0.0 {
            return Err(ConfigError::new("link bandwidth must be positive"));
        }
        Ok(())
    }

    /// Bytes of token state per block (valid bit, owner bit, token count),
    /// as described in Section 3.1 of the paper.
    pub fn token_state_bits(&self) -> u32 {
        2 + (32 - (self.token.tokens_per_block.max(1)).leading_zeros())
    }
}

impl Default for SystemConfig {
    fn default() -> Self {
        SystemConfig::isca03_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_parameters_match_the_paper() {
        let c = SystemConfig::isca03_default();
        assert_eq!(c.num_nodes, 16);
        assert_eq!(c.block_bytes, 64);
        assert_eq!(c.l1.size_bytes, 128 * 1024);
        assert_eq!(c.l1.latency_ns, 2);
        assert_eq!(c.l2.size_bytes, 4 * 1024 * 1024);
        assert_eq!(c.l2.latency_ns, 6);
        assert_eq!(c.dram_latency_ns, 80);
        assert_eq!(c.controller_latency_ns, 6);
        assert_eq!(c.interconnect.link_latency_ns, 15);
        assert!((c.interconnect.link_bandwidth_bytes_per_ns - 3.2).abs() < 1e-9);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn cache_geometry_divides_into_sets() {
        let c = SystemConfig::isca03_default();
        assert_eq!(c.l1.num_sets(64), 512);
        assert_eq!(c.l2.num_sets(64), 16384);
    }

    #[test]
    fn snooping_on_torus_is_rejected() {
        let c = SystemConfig::isca03_default()
            .with_protocol(ProtocolKind::Snooping)
            .with_topology(TopologyKind::Torus);
        assert!(c.validate().is_err());
    }

    #[test]
    fn with_protocol_selects_ordered_interconnect_for_snooping() {
        let c = SystemConfig::isca03_default().with_protocol(ProtocolKind::Snooping);
        assert_eq!(c.interconnect.topology, TopologyKind::Tree);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn too_few_tokens_is_rejected() {
        let mut c = SystemConfig::isca03_default().with_nodes(32);
        assert!(c.validate().is_ok());
        c.token.tokens_per_block = 8;
        assert!(c.validate().is_err());
    }

    #[test]
    fn with_nodes_grows_token_count() {
        let c = SystemConfig::isca03_default().with_nodes(64);
        assert_eq!(c.token.tokens_per_block, 64);
    }

    #[test]
    fn token_state_is_about_one_byte_for_sixty_four_tokens() {
        let mut c = SystemConfig::isca03_default();
        c.token.tokens_per_block = 64;
        // valid bit + owner bit + ceil(log2(64+1)) bits ~ 9 bits, the paper's
        // "one byte of storage" claim rounds this to 8.
        assert!(c.token_state_bits() <= 9);
    }

    #[test]
    fn protocol_names_are_stable() {
        assert_eq!(ProtocolKind::TokenB.to_string(), "TokenB");
        assert_eq!(ProtocolKind::Directory.to_string(), "Directory");
        assert_eq!(TopologyKind::Torus.to_string(), "Torus");
    }

    #[test]
    fn unordered_topology_reports_no_total_order() {
        assert!(TopologyKind::Tree.is_totally_ordered());
        assert!(!TopologyKind::Torus.is_totally_ordered());
        assert!(ProtocolKind::Snooping.requires_total_order());
        assert!(!ProtocolKind::TokenB.requires_total_order());
    }
}
