//! Common types for the Token Coherence reproduction.
//!
//! This crate defines the vocabulary shared by every other crate in the
//! workspace:
//!
//! * identifiers ([`NodeId`], [`ReqId`], the [`Cycle`] time unit),
//! * physical and block addresses ([`Address`], [`BlockAddr`], [`HomeMap`]),
//! * coherence messages ([`Message`], [`MsgKind`], [`Destination`], [`Vnet`]),
//! * processor-side memory operations ([`MemOp`], [`MemOpKind`]),
//! * system configuration ([`SystemConfig`] and friends, including the ISCA
//!   2003 Table 1 defaults),
//! * statistics containers ([`TrafficStats`], [`MissStats`], [`ControllerStats`]),
//! * the protocol-controller API ([`CoherenceController`], [`Outbox`],
//!   [`AccessOutcome`]) that the system runner uses to drive any of the four
//!   coherence protocols, and
//! * error / invariant-violation types.
//!
//! Nothing in this crate performs simulation itself; it exists so that the
//! interconnect, cache, protocol, and system crates can interoperate without
//! depending on each other.
//!
//! # Example
//!
//! ```
//! use tc_types::{Address, BlockAddr, HomeMap, NodeId, SystemConfig};
//!
//! let config = SystemConfig::isca03_default();
//! assert_eq!(config.num_nodes, 16);
//!
//! let addr = Address::new(0x1_2345);
//! let block = BlockAddr::from_address(addr, config.block_bytes);
//! let home = HomeMap::new(config.num_nodes, config.block_bytes).home_of(block);
//! assert!(home.index() < config.num_nodes);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod addr;
pub mod adversary;
pub mod config;
pub mod controller;
pub mod error;
pub mod fault;
pub mod hash;
pub mod ids;
pub mod job;
pub mod json;
pub mod memop;
pub mod message;
pub mod stats;

pub use addr::{Address, BlockAddr, HomeMap};
pub use adversary::{AdversaryKind, AdversarySpec, AdversaryStats};
pub use config::{
    BandwidthMode, CacheConfig, DirectoryMode, InterconnectConfig, ProcessorConfig, ProtocolKind,
    SystemConfig, TokenConfig, TopologyKind,
};
pub use controller::{
    AccessOutcome, BlockAudit, CoherenceController, MissCompletion, MissKind, Outbox, Timer,
    TimerKind,
};
pub use error::{ConfigError, InvariantViolation};
pub use fault::{FaultKind, FaultSpec, FaultStats, LinkOutage};
pub use hash::{FastHashMap, FastHashSet, FastHasher};
pub use ids::{Cycle, NodeId, ReqId};
pub use job::{JobId, JobPriority, JobState};
pub use json::{Json, JsonError};
pub use memop::{AccessType, MemOp, MemOpKind};
pub use message::{
    DataPayload, Destination, Message, MsgKind, Vnet, CONTROL_MSG_BYTES, DATA_MSG_BYTES,
};
pub use stats::{
    ControllerStats, EngineStats, LineStateStats, MissStats, ReissueStats, ShardStats,
    TrafficClass, TrafficStats,
};
