//! Adversarial scheduling vocabulary: a declarative description of a
//! *searched* worst-case delivery schedule, and the counters the adversary
//! plane reports back.
//!
//! Where [`FaultSpec`](crate::fault::FaultSpec) models random misbehaviour
//! (loss, duplication, jitter), [`AdversarySpec`] models a *malicious but
//! legal* fabric: deliveries are only ever moved **later**, within the
//! latitude an unordered interconnect already grants, so every adversarial
//! schedule is one the protocols must survive by contract. The spec is the
//! search space of `tc_testkit::hunt` — each knob is a dimension the
//! pathology hunter probes and mutates — and it is all-integer
//! (`Copy + Eq + Hash`) so it folds into `RunOptions`, fingerprints, and
//! replay recipes exactly like a fault spec.

use std::fmt;

/// The classes of perturbation the adversary plane can apply. Unlike fault
/// classes, none of these violate the fabric's delivery contract: every
/// arrival still happens, exactly once, never earlier than scheduled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AdversaryKind {
    /// Arrivals are skewed by up to `reorder_window` link quanta, so
    /// messages on the same path overtake each other (legal on any
    /// unordered interconnect).
    Reorder,
    /// Messages to or from the victim `(node, block)` pair are delayed by a
    /// bounded random amount — starvation pressure aimed at one miss.
    TargetedDelay,
    /// Competing requests for the victim block are time-aligned into bursts
    /// that land just before each storm-window boundary — a retry storm
    /// synchronized against the victim's reissue timer.
    RetryStorm,
}

impl AdversaryKind {
    /// Every perturbation class, in display order.
    pub const ALL: [AdversaryKind; 3] = [
        AdversaryKind::Reorder,
        AdversaryKind::TargetedDelay,
        AdversaryKind::RetryStorm,
    ];

    /// Short lowercase name, matching the spec syntax.
    pub fn name(self) -> &'static str {
        match self {
            AdversaryKind::Reorder => "reorder",
            AdversaryKind::TargetedDelay => "delay",
            AdversaryKind::RetryStorm => "storm",
        }
    }
}

impl fmt::Display for AdversaryKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Declarative description of an adversarial (but legal) delivery schedule.
///
/// The default ([`AdversarySpec::none`]) perturbs nothing and costs
/// nothing: the runner only instantiates an adversary plane when the spec
/// is non-empty, so unperturbed runs remain bit-identical to runs before
/// the adversary existed (the 317430 events-delivered pin).
///
/// The victim `(node, block)` pair aims the targeted-delay and retry-storm
/// classes; it is inert unless one of those classes is enabled. The spec's
/// own `seed` is folded into the run seed so adversarial schedules can be
/// varied independently of the workload stream.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct AdversarySpec {
    /// Reorder window depth: every arrival is skewed later by up to this
    /// many link quanta. Zero disables reordering.
    pub reorder_window: u32,
    /// Victim node index for the targeted classes.
    pub victim_node: u32,
    /// Victim block number (a [`BlockAddr`](crate::addr::BlockAddr) value)
    /// for the targeted classes.
    pub victim_block: u64,
    /// Maximum extra delay, in ns, applied to messages touching the victim
    /// pair. Zero disables targeted delay.
    pub target_delay_ns: u32,
    /// Retry-storm window, in ns: competing requests for the victim block
    /// are aligned to land just before each multiple of this window. Zero
    /// disables storms.
    pub storm_window_ns: u32,
    /// Test-only arbiter sabotage: when non-zero, the victim node's
    /// persistent-request arbiter silently discards incoming requests — a
    /// deliberately broken arbiter the starvation oracle must catch. Never
    /// part of a hunt's search space.
    pub sabotage: u32,
    /// Extra seed folded into the adversary plane's RNG stream.
    pub seed: u64,
}

impl AdversarySpec {
    /// The well-behaved fabric: no perturbation, no RNG draws, no overhead.
    pub const fn none() -> Self {
        AdversarySpec {
            reorder_window: 0,
            victim_node: 0,
            victim_block: 0,
            target_delay_ns: 0,
            storm_window_ns: 0,
            sabotage: 0,
            seed: 0,
        }
    }

    /// True when the spec perturbs nothing (the victim pair and `seed`
    /// alone do not make a spec active).
    pub fn is_none(&self) -> bool {
        self.reorder_window == 0
            && self.target_delay_ns == 0
            && self.storm_window_ns == 0
            && self.sabotage == 0
    }

    /// Sets the reorder window depth.
    pub fn with_reorder(mut self, window: u32) -> Self {
        self.reorder_window = window;
        self
    }

    /// Sets the victim `(node, block)` pair the targeted classes aim at.
    pub fn with_victim(mut self, node: u32, block: u64) -> Self {
        self.victim_node = node;
        self.victim_block = block;
        self
    }

    /// Sets the targeted-delay bound in ns.
    pub fn with_target_delay(mut self, max_ns: u32) -> Self {
        self.target_delay_ns = max_ns;
        self
    }

    /// Sets the retry-storm window in ns.
    pub fn with_storm(mut self, window_ns: u32) -> Self {
        self.storm_window_ns = window_ns;
        self
    }

    /// Enables the test-only arbiter sabotage.
    pub fn with_sabotage(mut self) -> Self {
        self.sabotage = 1;
        self
    }

    /// Sets the extra adversary-stream seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Does this spec apply the given perturbation class at all?
    pub fn enables(&self, kind: AdversaryKind) -> bool {
        match kind {
            AdversaryKind::Reorder => self.reorder_window > 0,
            AdversaryKind::TargetedDelay => self.target_delay_ns > 0,
            AdversaryKind::RetryStorm => self.storm_window_ns > 0,
        }
    }

    /// Upper bound, in ns, on how much later than the fault-free schedule
    /// this spec can push any single arrival. The starvation oracle folds
    /// this into its bounded-wait derivation: an adversarial run is allowed
    /// exactly this much extra latitude per hop, never more.
    pub fn max_extra_delay_ns(&self, link_latency_ns: u64) -> u64 {
        let quantum = link_latency_ns.max(1);
        u64::from(self.reorder_window) * quantum
            + u64::from(self.target_delay_ns)
            + u64::from(self.storm_window_ns)
    }

    /// Parses the adversary spec syntax: comma-separated `reorder=W`,
    /// `victim=NODE@BLOCK`, `delay=NS`, `storm=NS`, `sabotage=1`, `seed=N`,
    /// e.g. `reorder=4,victim=2@17,delay=300,storm=900,seed=7`.
    ///
    /// Whitespace around clauses, keys, and values is ignored; each key may
    /// appear at most once (a repeated clause is a typo a sweep config
    /// wants rejected loudly, not silently last-wins).
    pub fn parse(text: &str) -> Result<AdversarySpec, String> {
        let mut spec = AdversarySpec::none();
        // `Display` prints an inactive spec as `none`; accept it back so
        // the documented parse(to_string()) round-trip holds for every spec.
        if text.trim().eq_ignore_ascii_case("none") {
            return Ok(spec);
        }
        let mut seen: Vec<&str> = Vec::new();
        for part in text.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("adversary clause `{part}` is not key=value"))?;
            let key = key.trim();
            let value = value.trim();
            if seen.contains(&key) {
                return Err(format!("duplicate adversary clause `{key}`"));
            }
            seen.push(key);
            match key {
                "reorder" => {
                    spec.reorder_window = value
                        .parse()
                        .map_err(|_| format!("bad reorder window `{value}`"))?;
                }
                "victim" => {
                    let (node, block) = value
                        .split_once('@')
                        .ok_or_else(|| format!("victim spec `{value}` is not NODE@BLOCK"))?;
                    spec.victim_node = node
                        .parse()
                        .map_err(|_| format!("bad victim node `{node}`"))?;
                    spec.victim_block = block
                        .parse()
                        .map_err(|_| format!("bad victim block `{block}`"))?;
                }
                "delay" => {
                    spec.target_delay_ns = value
                        .parse()
                        .map_err(|_| format!("bad delay bound `{value}`"))?;
                }
                "storm" => {
                    spec.storm_window_ns = value
                        .parse()
                        .map_err(|_| format!("bad storm window `{value}`"))?;
                }
                "sabotage" => {
                    spec.sabotage = value
                        .parse()
                        .map_err(|_| format!("bad sabotage flag `{value}`"))?;
                }
                "seed" => {
                    spec.seed = value.parse().map_err(|_| format!("bad seed `{value}`"))?;
                }
                other => return Err(format!("unknown adversary clause `{other}`")),
            }
        }
        Ok(spec)
    }
}

/// Canonical spec string: parseable by [`AdversarySpec::parse`] and stable,
/// so hunt results and replay recipes can embed it. Every non-default field
/// of an active spec is emitted, so `parse(spec.to_string()) == spec`.
impl fmt::Display for AdversarySpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_none() {
            return f.write_str("none");
        }
        let mut sep = "";
        let mut clause = |f: &mut fmt::Formatter<'_>, text: String| {
            let r = write!(f, "{sep}{text}");
            sep = ",";
            r
        };
        if self.reorder_window > 0 {
            clause(f, format!("reorder={}", self.reorder_window))?;
        }
        if self.victim_node != 0 || self.victim_block != 0 {
            clause(
                f,
                format!("victim={}@{}", self.victim_node, self.victim_block),
            )?;
        }
        if self.target_delay_ns > 0 {
            clause(f, format!("delay={}", self.target_delay_ns))?;
        }
        if self.storm_window_ns > 0 {
            clause(f, format!("storm={}", self.storm_window_ns))?;
        }
        if self.sabotage != 0 {
            clause(f, format!("sabotage={}", self.sabotage))?;
        }
        if self.seed != 0 {
            clause(f, format!("seed={}", self.seed))?;
        }
        Ok(())
    }
}

/// Counters reported by the adversary plane for one run. All-integer and
/// `Copy + Eq` so they join `EngineStats` and the bit-identical `RunReport`
/// comparison without ceremony.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdversaryStats {
    /// Arrivals skewed by the reorder window.
    pub reordered: u64,
    /// Arrivals delayed because they touched the victim pair.
    pub targeted: u64,
    /// Competing requests aligned into a retry storm.
    pub stormed: u64,
    /// Worst single-arrival displacement applied, in ns.
    pub max_skew_ns: u64,
}

impl AdversaryStats {
    /// Total arrivals the plane perturbed.
    pub fn total_perturbed(&self) -> u64 {
        self.reordered + self.targeted + self.stormed
    }

    /// Serializes every counter into an engine snapshot.
    pub fn save_state(&self, w: &mut tc_sim::SnapWriter) {
        w.u64(self.reordered);
        w.u64(self.targeted);
        w.u64(self.stormed);
        w.u64(self.max_skew_ns);
    }

    /// Restores [`AdversaryStats::save_state`] bytes.
    pub fn load_state(
        r: &mut tc_sim::SnapReader<'_>,
    ) -> Result<AdversaryStats, tc_sim::SnapshotError> {
        Ok(AdversaryStats {
            reordered: r.u64()?,
            targeted: r.u64()?,
            stormed: r.u64()?,
            max_skew_ns: r.u64()?,
        })
    }
}

impl fmt::Display for AdversaryStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "reordered {} / targeted {} / stormed {}; worst skew {} ns",
            self.reordered, self.targeted, self.stormed, self.max_skew_ns
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_spec_is_none_and_displays_as_none() {
        let spec = AdversarySpec::default();
        assert!(spec.is_none());
        assert_eq!(spec, AdversarySpec::none());
        assert_eq!(spec.to_string(), "none");
        // A bare seed or victim pair does not activate the plane.
        assert!(AdversarySpec::none().with_seed(7).is_none());
        assert!(AdversarySpec::none().with_victim(2, 17).is_none());
    }

    #[test]
    fn parse_round_trips_through_display() {
        let text = "reorder=4,victim=2@17,delay=300,storm=900,seed=7";
        let spec = AdversarySpec::parse(text).unwrap();
        assert_eq!(spec.reorder_window, 4);
        assert_eq!(spec.victim_node, 2);
        assert_eq!(spec.victim_block, 17);
        assert_eq!(spec.target_delay_ns, 300);
        assert_eq!(spec.storm_window_ns, 900);
        assert_eq!(spec.seed, 7);
        let reparsed = AdversarySpec::parse(&spec.to_string()).unwrap();
        assert_eq!(spec, reparsed);
        // Sabotage round-trips too.
        let sab = spec.with_sabotage();
        assert_eq!(AdversarySpec::parse(&sab.to_string()).unwrap(), sab);
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        assert!(AdversarySpec::parse("reorder").is_err());
        assert!(AdversarySpec::parse("victim=2").is_err());
        assert!(AdversarySpec::parse("victim=x@1").is_err());
        assert!(AdversarySpec::parse("sprocket=1").is_err());
        assert!(AdversarySpec::parse("reorder=2,reorder=2").is_err());
        assert!(AdversarySpec::parse("seed=1, seed=2").is_err());
        assert!(AdversarySpec::parse("")
            .map(|s| s.is_none())
            .unwrap_or(false));
    }

    #[test]
    fn builders_match_parse() {
        let built = AdversarySpec::none()
            .with_reorder(3)
            .with_victim(1, 42)
            .with_target_delay(250)
            .with_storm(600);
        let parsed = AdversarySpec::parse("reorder=3,victim=1@42,delay=250,storm=600").unwrap();
        assert_eq!(built, parsed);
    }

    #[test]
    fn enables_tracks_each_class() {
        let spec = AdversarySpec::none().with_reorder(2).with_storm(500);
        assert!(spec.enables(AdversaryKind::Reorder));
        assert!(!spec.enables(AdversaryKind::TargetedDelay));
        assert!(spec.enables(AdversaryKind::RetryStorm));
        for kind in AdversaryKind::ALL {
            assert!(!kind.name().is_empty());
        }
    }

    #[test]
    fn max_extra_delay_bounds_every_class() {
        let spec = AdversarySpec::none()
            .with_reorder(4)
            .with_target_delay(300)
            .with_storm(900);
        assert_eq!(spec.max_extra_delay_ns(15), 4 * 15 + 300 + 900);
        assert_eq!(AdversarySpec::none().max_extra_delay_ns(15), 0);
    }

    #[test]
    fn adversary_stats_snapshot_round_trips() {
        let stats = AdversaryStats {
            reordered: 1,
            targeted: 2,
            stormed: 3,
            max_skew_ns: 4,
        };
        let mut w = tc_sim::SnapWriter::new();
        stats.save_state(&mut w);
        let bytes = w.into_bytes();
        let mut r = tc_sim::SnapReader::new(&bytes);
        let back = AdversaryStats::load_state(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(stats, back);
        assert_eq!(back.total_perturbed(), 6);
        assert!(!back.to_string().is_empty());
    }
}
