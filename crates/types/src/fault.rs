//! Fault-injection vocabulary: what the fabric may do to a message, which
//! protocols contract to survive which fault classes, and the counters the
//! fault plane reports back.
//!
//! The paper's decoupling claim is that the correctness substrate (token
//! counting + persistent requests) keeps the system safe and live even when
//! the performance protocol's messages are lost, duplicated, delayed, or
//! reordered. [`FaultSpec`] is the declarative description of such an
//! unreliable fabric; `tc_interconnect::FaultPlane` executes it
//! deterministically from its own RNG stream so `(seed, FaultSpec)`
//! reproduces the exact same fault sequence bit-for-bit.
//!
//! Two gates bound what is ever injected:
//!
//! * **Protocol granularity** — [`ProtocolKind::tolerates`] declares the
//!   fault classes a protocol contracts to survive. Snooping assumes a
//!   reliable totally-ordered tree, so it contracts for nothing; injecting
//!   faults it never claimed to survive would produce false failures, so the
//!   harness reports those combinations as capability gaps instead.
//! * **Message granularity** — even TokenB only tolerates loss and
//!   duplication of *transient requests* (the paper's "requests are hints").
//!   Token-carrying messages must never be dropped (destroys tokens) or
//!   duplicated (mints tokens): the conservation invariant the verifier
//!   audits is a property of the *system*, fabric included.
//!   [`FaultSpec::loss_eligible`] encodes that line.

use std::fmt;

use crate::config::ProtocolKind;
use crate::ids::Cycle;
use crate::message::{Message, MsgKind};

/// One part per million; probabilities in [`FaultSpec`] are stored in ppm so
/// the spec stays all-integer (`Copy + Eq + Hash`, usable inside
/// `RunOptions` without breaking its derives).
pub const PPM: u32 = 1_000_000;

/// The classes of misbehaviour the fault plane can inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FaultKind {
    /// A message (or one arrival of a fan-out) is silently discarded.
    Drop,
    /// A message arrival is delivered twice, the copy skewed a few cycles.
    Duplicate,
    /// A message arrival is pushed later by a bounded random jitter.
    Delay,
    /// Arrival times are scrambled within a bounded window, so messages on
    /// the same path can overtake each other.
    Reorder,
    /// A link between two nodes is down for a scheduled window; arrivals
    /// that would cross it are deferred until the link comes back up.
    LinkDown,
}

impl FaultKind {
    /// Every fault class, in display order.
    pub const ALL: [FaultKind; 5] = [
        FaultKind::Drop,
        FaultKind::Duplicate,
        FaultKind::Delay,
        FaultKind::Reorder,
        FaultKind::LinkDown,
    ];

    /// Short lowercase name, matching the `--faults` spec syntax.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::Drop => "drop",
            FaultKind::Duplicate => "dup",
            FaultKind::Delay => "delay",
            FaultKind::Reorder => "reorder",
            FaultKind::LinkDown => "link",
        }
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A scheduled outage of the (undirected) link between two nodes.
///
/// While `from <= now < until`, arrivals between the pair are deferred to
/// just after `until` (plus a small deterministic jitter so deferred
/// messages do not all land on the same cycle).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LinkOutage {
    /// One endpoint (node index).
    pub a: u32,
    /// The other endpoint (node index).
    pub b: u32,
    /// First cycle of the outage window (inclusive).
    pub from: Cycle,
    /// End of the outage window (exclusive).
    pub until: Cycle,
}

impl LinkOutage {
    /// Does this outage cover traffic between `x` and `y` at time `at`?
    #[inline]
    pub fn covers(&self, x: u32, y: u32, at: Cycle) -> bool {
        let pair = (self.a == x && self.b == y) || (self.a == y && self.b == x);
        pair && at >= self.from && at < self.until
    }
}

impl fmt::Display for LinkOutage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "link={}-{}@{}..{}",
            self.a, self.b, self.from, self.until
        )
    }
}

/// Maximum number of scheduled link outages per spec (fixed-size array so
/// the spec stays `Copy`).
pub const MAX_OUTAGES: usize = 4;

/// Declarative description of an unreliable fabric.
///
/// The default ([`FaultSpec::none`]) injects nothing and costs nothing: the
/// runner only instantiates a fault plane when the spec is non-empty, so
/// faultless runs remain bit-identical to runs before fault injection
/// existed.
///
/// Probabilities are parts-per-million (see [`PPM`]); use the builder
/// methods to write them as fractions. The spec's own `seed` is folded into
/// the run seed so the fault stream can be varied independently of the
/// workload stream.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct FaultSpec {
    /// Probability (ppm) that a loss-eligible arrival is dropped.
    pub drop_ppm: u32,
    /// Probability (ppm) that a loss-eligible arrival is duplicated.
    pub dup_ppm: u32,
    /// Probability (ppm) that an arrival is jittered later.
    pub delay_ppm: u32,
    /// Maximum extra delay, in ns/cycles, for a jittered arrival.
    pub delay_max_ns: u64,
    /// Reorder window depth: each arrival is skewed by up to `depth` link
    /// quanta, letting up to `depth` later messages overtake it. Zero
    /// disables reordering.
    pub reorder_depth: u32,
    /// Scheduled link outages ([`MAX_OUTAGES`] at most; unused slots are
    /// `None`).
    pub outages: [Option<LinkOutage>; MAX_OUTAGES],
    /// Extra seed folded into the fault plane's RNG stream.
    pub seed: u64,
}

impl FaultSpec {
    /// The reliable fabric: no faults, no RNG draws, no overhead.
    pub const fn none() -> Self {
        FaultSpec {
            drop_ppm: 0,
            dup_ppm: 0,
            delay_ppm: 0,
            delay_max_ns: 0,
            reorder_depth: 0,
            outages: [None; MAX_OUTAGES],
            seed: 0,
        }
    }

    /// True when the spec injects nothing (the `seed` field alone does not
    /// make a spec active).
    pub fn is_none(&self) -> bool {
        self.drop_ppm == 0
            && self.dup_ppm == 0
            && self.delay_ppm == 0
            && self.reorder_depth == 0
            && self.outages.iter().all(|o| o.is_none())
    }

    /// Sets the drop probability (clamped to `[0, 1]`).
    pub fn with_drop(mut self, probability: f64) -> Self {
        self.drop_ppm = to_ppm(probability);
        self
    }

    /// Sets the duplication probability (clamped to `[0, 1]`).
    pub fn with_dup(mut self, probability: f64) -> Self {
        self.dup_ppm = to_ppm(probability);
        self
    }

    /// Sets the delay-jitter probability and bound.
    pub fn with_delay(mut self, probability: f64, max_ns: u64) -> Self {
        self.delay_ppm = to_ppm(probability);
        self.delay_max_ns = max_ns.max(1);
        self
    }

    /// Sets the reorder window depth.
    pub fn with_reorder(mut self, depth: u32) -> Self {
        self.reorder_depth = depth;
        self
    }

    /// Schedules a link outage in the first free slot. Panics if all
    /// [`MAX_OUTAGES`] slots are taken.
    pub fn with_outage(mut self, a: u32, b: u32, from: Cycle, until: Cycle) -> Self {
        let slot = self
            .outages
            .iter_mut()
            .find(|s| s.is_none())
            .expect("all outage slots in use");
        *slot = Some(LinkOutage { a, b, from, until });
        self
    }

    /// Sets the extra fault-stream seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Does this spec inject the given fault class at all?
    pub fn enables(&self, kind: FaultKind) -> bool {
        match kind {
            FaultKind::Drop => self.drop_ppm > 0,
            FaultKind::Duplicate => self.dup_ppm > 0,
            FaultKind::Delay => self.delay_ppm > 0,
            FaultKind::Reorder => self.reorder_depth > 0,
            FaultKind::LinkDown => self.outages.iter().any(|o| o.is_some()),
        }
    }

    /// Restricts this spec to the fault classes `protocol` contracts to
    /// survive, returning the gated spec and the classes that were enabled
    /// but had to be removed (the protocol's capability gaps).
    pub fn gated_for(&self, protocol: ProtocolKind) -> (FaultSpec, Vec<FaultKind>) {
        let mut gated = *self;
        let mut gaps = Vec::new();
        for kind in FaultKind::ALL {
            if self.enables(kind) && !protocol.tolerates(kind) {
                gaps.push(kind);
                match kind {
                    FaultKind::Drop => gated.drop_ppm = 0,
                    FaultKind::Duplicate => gated.dup_ppm = 0,
                    FaultKind::Delay => {
                        gated.delay_ppm = 0;
                        gated.delay_max_ns = 0;
                    }
                    FaultKind::Reorder => gated.reorder_depth = 0,
                    FaultKind::LinkDown => gated.outages = [None; MAX_OUTAGES],
                }
            }
        }
        (gated, gaps)
    }

    /// May this message be dropped or duplicated without breaking the
    /// protocol's correctness argument?
    ///
    /// Token Coherence treats transient requests as *hints*: a lost GetS or
    /// GetM is recovered by the reissue timeout and, ultimately, by a
    /// persistent request, and a duplicated one is at worst redundant work.
    /// Everything that carries tokens or participates in the persistent
    /// request handshake is part of the correctness substrate and must ride
    /// a reliable channel (dropping it destroys tokens, duplicating it
    /// mints them — both conservation violations the verifier would
    /// rightly flag).
    pub fn loss_eligible(protocol: ProtocolKind, msg: &Message) -> bool {
        match protocol {
            ProtocolKind::TokenB => matches!(msg.kind, MsgKind::GetS | MsgKind::GetM),
            // No other protocol has retry machinery, so none contracts for
            // loss or duplication of anything.
            _ => false,
        }
    }

    /// Parses the `--faults` spec syntax: comma-separated
    /// `drop=P`, `dup=P`, `delay=P@MAXNS`, `reorder=DEPTH`,
    /// `link=A-B@FROM..UNTIL`, `seed=N`, e.g.
    /// `drop=0.01,dup=0.005,reorder=4,link=2-5@1000..5000`.
    ///
    /// Whitespace around clauses, keys, and values is ignored. Each scalar
    /// key may appear at most once — a repeated `drop=` would silently keep
    /// only the last value, which is exactly the kind of typo a sweep config
    /// wants rejected loudly — while `link=` may repeat up to
    /// [`MAX_OUTAGES`] times because each clause schedules a distinct outage.
    pub fn parse(text: &str) -> Result<FaultSpec, String> {
        let mut spec = FaultSpec::none();
        // `Display` prints an inactive spec as `none`; accept it back so
        // the documented parse(to_string()) round-trip holds for every spec.
        if text.trim().eq_ignore_ascii_case("none") {
            return Ok(spec);
        }
        let mut seen: Vec<&str> = Vec::new();
        for part in text.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("fault clause `{part}` is not key=value"))?;
            let key = key.trim();
            let value = value.trim();
            if key != "link" {
                if seen.contains(&key) {
                    return Err(format!("duplicate fault clause `{key}`"));
                }
                seen.push(key);
            }
            match key {
                "drop" => spec.drop_ppm = parse_probability(value)?,
                "dup" => spec.dup_ppm = parse_probability(value)?,
                "delay" => {
                    let (p, max) = value
                        .split_once('@')
                        .ok_or_else(|| format!("delay spec `{value}` is not P@MAXNS"))?;
                    spec.delay_ppm = parse_probability(p)?;
                    spec.delay_max_ns = max
                        .parse::<u64>()
                        .map_err(|_| format!("bad delay bound `{max}`"))?
                        .max(1);
                }
                "reorder" => {
                    spec.reorder_depth = value
                        .parse()
                        .map_err(|_| format!("bad reorder depth `{value}`"))?;
                }
                "link" => {
                    let (pair, window) = value
                        .split_once('@')
                        .ok_or_else(|| format!("link spec `{value}` is not A-B@FROM..UNTIL"))?;
                    let (a, b) = pair
                        .split_once('-')
                        .ok_or_else(|| format!("link pair `{pair}` is not A-B"))?;
                    let (from, until) = window
                        .split_once("..")
                        .ok_or_else(|| format!("link window `{window}` is not FROM..UNTIL"))?;
                    let a = a.parse().map_err(|_| format!("bad node `{a}`"))?;
                    let b = b.parse().map_err(|_| format!("bad node `{b}`"))?;
                    let from = from.parse().map_err(|_| format!("bad cycle `{from}`"))?;
                    let until = until.parse().map_err(|_| format!("bad cycle `{until}`"))?;
                    if until <= from {
                        return Err(format!("empty link outage window `{window}`"));
                    }
                    if spec.outages.iter().all(|o| o.is_some()) {
                        return Err(format!("more than {MAX_OUTAGES} link outages"));
                    }
                    spec = spec.with_outage(a, b, from, until);
                }
                "seed" => {
                    spec.seed = value.parse().map_err(|_| format!("bad seed `{value}`"))?;
                }
                other => return Err(format!("unknown fault clause `{other}`")),
            }
        }
        Ok(spec)
    }
}

/// Canonical spec string: parseable by [`FaultSpec::parse`] and stable, so
/// replay recipes and campaign JSON can embed it.
impl fmt::Display for FaultSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_none() {
            return f.write_str("none");
        }
        let mut sep = "";
        let mut clause = |f: &mut fmt::Formatter<'_>, text: String| {
            let r = write!(f, "{sep}{text}");
            sep = ",";
            r
        };
        if self.drop_ppm > 0 {
            clause(f, format!("drop={}", from_ppm(self.drop_ppm)))?;
        }
        if self.dup_ppm > 0 {
            clause(f, format!("dup={}", from_ppm(self.dup_ppm)))?;
        }
        if self.delay_ppm > 0 {
            clause(
                f,
                format!("delay={}@{}", from_ppm(self.delay_ppm), self.delay_max_ns),
            )?;
        }
        if self.reorder_depth > 0 {
            clause(f, format!("reorder={}", self.reorder_depth))?;
        }
        for outage in self.outages.iter().flatten() {
            clause(f, outage.to_string())?;
        }
        if self.seed != 0 {
            clause(f, format!("seed={}", self.seed))?;
        }
        Ok(())
    }
}

fn to_ppm(probability: f64) -> u32 {
    (probability.clamp(0.0, 1.0) * f64::from(PPM)).round() as u32
}

fn from_ppm(ppm: u32) -> f64 {
    f64::from(ppm) / f64::from(PPM)
}

fn parse_probability(text: &str) -> Result<u32, String> {
    let p: f64 = text
        .parse()
        .map_err(|_| format!("bad probability `{text}`"))?;
    if !(0.0..=1.0).contains(&p) {
        return Err(format!("probability `{text}` outside [0, 1]"));
    }
    Ok(to_ppm(p))
}

impl ProtocolKind {
    /// The fault classes this protocol contracts to survive.
    ///
    /// * **TokenB** — everything: the paper's claim. Loss and duplication
    ///   are still gated per-message by [`FaultSpec::loss_eligible`].
    /// * **Hammer** — delay, reorder, and link outages only: its broadcast
    ///   probe/ack counting assumes every probe is answered exactly once,
    ///   and it has no retry machinery, so loss wedges it and duplication
    ///   overshoots its ack counts.
    /// * **Directory** — delay, reorder, and link outages only, for the
    ///   same reason (no retries, exact forwarded-request accounting).
    /// * **Snooping** — nothing: it assumes a reliable *totally ordered*
    ///   tree, and even pure jitter breaks the total order its state
    ///   machine is built on.
    pub fn tolerated_faults(self) -> &'static [FaultKind] {
        match self {
            ProtocolKind::TokenB => &FaultKind::ALL,
            ProtocolKind::Hammer | ProtocolKind::Directory => {
                &[FaultKind::Delay, FaultKind::Reorder, FaultKind::LinkDown]
            }
            ProtocolKind::Snooping => &[],
        }
    }

    /// Does this protocol contract to survive the given fault class?
    pub fn tolerates(self, kind: FaultKind) -> bool {
        self.tolerated_faults().contains(&kind)
    }
}

/// Counters reported by the fault plane and the recovery machinery for one
/// run. All-integer and `Copy + Eq` so it joins `EngineStats` and the
/// bit-identical `RunReport` comparison without ceremony.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Arrivals silently discarded.
    pub dropped: u64,
    /// Extra arrivals injected by duplication.
    pub duplicated: u64,
    /// Arrivals pushed later by delay jitter.
    pub delayed: u64,
    /// Arrivals skewed by the reorder window.
    pub reordered: u64,
    /// Arrivals deferred past a link outage.
    pub link_deferred: u64,
    /// Reissued transient requests actually sent (each one is a reissue
    /// timeout that fired and found its miss still outstanding).
    pub reissue_timeouts: u64,
    /// Persistent requests activated (summed over nodes) — the correctness
    /// substrate's last-resort liveness mechanism kicking in.
    pub persistent_activations: u64,
    /// Worst-case end-to-end miss latency observed, in ns — the recovery
    /// latency bound under the injected faults.
    pub max_recovery_ns: u64,
}

impl FaultStats {
    /// Total arrivals perturbed by the plane (excludes the recovery-side
    /// counters).
    pub fn total_injected(&self) -> u64 {
        self.dropped + self.duplicated + self.delayed + self.reordered + self.link_deferred
    }

    /// Serializes every counter into an engine snapshot.
    pub fn save_state(&self, w: &mut tc_sim::SnapWriter) {
        w.u64(self.dropped);
        w.u64(self.duplicated);
        w.u64(self.delayed);
        w.u64(self.reordered);
        w.u64(self.link_deferred);
        w.u64(self.reissue_timeouts);
        w.u64(self.persistent_activations);
        w.u64(self.max_recovery_ns);
    }

    /// Restores [`FaultStats::save_state`] bytes.
    pub fn load_state(r: &mut tc_sim::SnapReader<'_>) -> Result<FaultStats, tc_sim::SnapshotError> {
        Ok(FaultStats {
            dropped: r.u64()?,
            duplicated: r.u64()?,
            delayed: r.u64()?,
            reordered: r.u64()?,
            link_deferred: r.u64()?,
            reissue_timeouts: r.u64()?,
            persistent_activations: r.u64()?,
            max_recovery_ns: r.u64()?,
        })
    }
}

impl fmt::Display for FaultStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "dropped {} / duplicated {} / delayed {} / reordered {} / link-deferred {}; \
             {} reissues sent, {} persistent activations, worst recovery {} ns",
            self.dropped,
            self.duplicated,
            self.delayed,
            self.reordered,
            self.link_deferred,
            self.reissue_timeouts,
            self.persistent_activations,
            self.max_recovery_ns
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::BlockAddr;
    use crate::ids::NodeId;
    use crate::message::{Destination, Vnet};

    #[test]
    fn default_spec_is_none_and_displays_as_none() {
        let spec = FaultSpec::default();
        assert!(spec.is_none());
        assert_eq!(spec, FaultSpec::none());
        assert_eq!(spec.to_string(), "none");
        // A bare seed does not activate the plane.
        assert!(FaultSpec::none().with_seed(7).is_none());
    }

    #[test]
    fn parse_round_trips_through_display() {
        let text = "drop=0.01,dup=0.005,delay=0.02@400,reorder=4,link=2-5@1000..5000,seed=9";
        let spec = FaultSpec::parse(text).unwrap();
        assert_eq!(spec.drop_ppm, 10_000);
        assert_eq!(spec.dup_ppm, 5_000);
        assert_eq!(spec.delay_ppm, 20_000);
        assert_eq!(spec.delay_max_ns, 400);
        assert_eq!(spec.reorder_depth, 4);
        assert_eq!(
            spec.outages[0],
            Some(LinkOutage {
                a: 2,
                b: 5,
                from: 1000,
                until: 5000
            })
        );
        assert_eq!(spec.seed, 9);
        let reparsed = FaultSpec::parse(&spec.to_string()).unwrap();
        assert_eq!(spec, reparsed);
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        assert!(FaultSpec::parse("drop").is_err());
        assert!(FaultSpec::parse("drop=2.0").is_err());
        assert!(FaultSpec::parse("delay=0.1").is_err());
        assert!(FaultSpec::parse("link=2-5@50..50").is_err());
        assert!(FaultSpec::parse("sprocket=1").is_err());
        assert!(FaultSpec::parse("").map(|s| s.is_none()).unwrap_or(false));
        // Duplicate scalar clauses are errors, not silent last-wins.
        assert!(FaultSpec::parse("drop=0.1,drop=0.2").is_err());
        assert!(FaultSpec::parse("seed=1,seed=2").is_err());
        assert!(FaultSpec::parse("delay=0.1@50,delay=0.2@60").is_err());
        assert!(FaultSpec::parse("reorder=2, reorder=2").is_err());
        // A fifth link outage still overflows the fixed slots.
        assert!(FaultSpec::parse(
            "link=0-1@1..2,link=0-2@1..2,link=0-3@1..2,link=1-2@1..2,link=1-3@1..2"
        )
        .is_err());
    }

    #[test]
    fn parse_trims_whitespace_and_allows_repeated_link_clauses() {
        let spec = FaultSpec::parse(" drop = 0.01 , link=0-1@10..20, link=2-3@30..40 ,, seed = 7 ")
            .unwrap();
        assert_eq!(spec.drop_ppm, 10_000);
        assert_eq!(spec.seed, 7);
        assert_eq!(
            spec.outages[0],
            Some(LinkOutage {
                a: 0,
                b: 1,
                from: 10,
                until: 20
            })
        );
        assert_eq!(
            spec.outages[1],
            Some(LinkOutage {
                a: 2,
                b: 3,
                from: 30,
                until: 40
            })
        );
    }

    #[test]
    fn fault_stats_snapshot_round_trips() {
        let stats = FaultStats {
            dropped: 1,
            duplicated: 2,
            delayed: 3,
            reordered: 4,
            link_deferred: 5,
            reissue_timeouts: 6,
            persistent_activations: 7,
            max_recovery_ns: 8,
        };
        let mut w = tc_sim::SnapWriter::new();
        stats.save_state(&mut w);
        let bytes = w.into_bytes();
        let mut r = tc_sim::SnapReader::new(&bytes);
        let back = FaultStats::load_state(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(stats, back);
    }

    #[test]
    fn builders_match_parse() {
        let built = FaultSpec::none()
            .with_drop(0.01)
            .with_dup(0.005)
            .with_reorder(4)
            .with_outage(2, 5, 1000, 5000);
        let parsed = FaultSpec::parse("drop=0.01,dup=0.005,reorder=4,link=2-5@1000..5000").unwrap();
        assert_eq!(built, parsed);
    }

    #[test]
    fn outage_covers_both_directions_within_window() {
        let o = LinkOutage {
            a: 2,
            b: 5,
            from: 100,
            until: 200,
        };
        assert!(o.covers(2, 5, 100));
        assert!(o.covers(5, 2, 199));
        assert!(!o.covers(2, 5, 200));
        assert!(!o.covers(2, 5, 99));
        assert!(!o.covers(2, 6, 150));
    }

    #[test]
    fn gating_removes_untolerated_classes_and_reports_gaps() {
        let spec = FaultSpec::none().with_drop(0.01).with_reorder(4);
        let (tokenb, gaps) = spec.gated_for(ProtocolKind::TokenB);
        assert_eq!(tokenb, spec);
        assert!(gaps.is_empty());

        let (hammer, gaps) = spec.gated_for(ProtocolKind::Hammer);
        assert_eq!(hammer.drop_ppm, 0);
        assert_eq!(hammer.reorder_depth, 4);
        assert_eq!(gaps, vec![FaultKind::Drop]);

        let (snoop, gaps) = spec.gated_for(ProtocolKind::Snooping);
        assert!(snoop.is_none());
        assert_eq!(gaps, vec![FaultKind::Drop, FaultKind::Reorder]);
    }

    #[test]
    fn only_tokenb_transient_requests_are_loss_eligible() {
        let req = Message::new(
            NodeId::new(0),
            Destination::Broadcast,
            BlockAddr::new(4),
            MsgKind::GetM,
            Vnet::Request,
            10,
        );
        assert!(FaultSpec::loss_eligible(ProtocolKind::TokenB, &req));
        assert!(!FaultSpec::loss_eligible(ProtocolKind::Hammer, &req));

        let tokens = Message::new(
            NodeId::new(1),
            Destination::Node(NodeId::new(0)),
            BlockAddr::new(4),
            MsgKind::TokenOnly { tokens: 3 },
            Vnet::Response,
            10,
        );
        assert!(!FaultSpec::loss_eligible(ProtocolKind::TokenB, &tokens));
    }
}
