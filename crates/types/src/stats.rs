//! Statistics containers shared by the protocols, the interconnect, and the
//! system runner.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::{Mutex, OnceLock};

use tc_sim::snapshot::{SnapReader, SnapWriter, SnapshotError};

use crate::ids::Cycle;
use crate::message::{Message, MsgKind};

/// Interns a counter name so a deserialized [`ControllerStats::extra`] key
/// can become the `&'static str` the map requires. The vocabulary is the
/// handful of protocol counter names, so leaking each distinct name once is
/// bounded and cheap.
pub fn intern_counter_name(name: &str) -> &'static str {
    static NAMES: OnceLock<Mutex<Vec<&'static str>>> = OnceLock::new();
    let names = NAMES.get_or_init(|| Mutex::new(Vec::new()));
    let mut guard = names.lock().unwrap_or_else(|poison| poison.into_inner());
    if let Some(&existing) = guard.iter().find(|&&n| n == name) {
        return existing;
    }
    let leaked: &'static str = Box::leak(name.to_owned().into_boxed_str());
    guard.push(leaked);
    leaked
}

/// Traffic classification used by the paper's traffic breakdowns
/// (Figures 4b and 5b).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TrafficClass {
    /// Initial transient / ordinary requests.
    Request,
    /// Requests forwarded by a home node and invalidations.
    ForwardedOrInvalidation,
    /// Data responses and writebacks (72-byte messages).
    DataResponseOrWriteback,
    /// Other non-data messages (acks, unblocks, dataless token transfers).
    OtherControl,
    /// Reissued transient requests and persistent-request traffic
    /// (Token Coherence only).
    ReissueOrPersistent,
}

impl TrafficClass {
    /// All classes, in the order the paper's stacked bars present them.
    pub const ALL: [TrafficClass; 5] = [
        TrafficClass::DataResponseOrWriteback,
        TrafficClass::OtherControl,
        TrafficClass::ForwardedOrInvalidation,
        TrafficClass::Request,
        TrafficClass::ReissueOrPersistent,
    ];

    /// Dense index of this class, used by [`TrafficStats`]' flat counters.
    #[inline]
    const fn index(self) -> usize {
        match self {
            TrafficClass::Request => 0,
            TrafficClass::ForwardedOrInvalidation => 1,
            TrafficClass::DataResponseOrWriteback => 2,
            TrafficClass::OtherControl => 3,
            TrafficClass::ReissueOrPersistent => 4,
        }
    }

    /// Classifies a message.
    pub fn of(msg: &Message) -> TrafficClass {
        if msg.reissue {
            return TrafficClass::ReissueOrPersistent;
        }
        match &msg.kind {
            MsgKind::GetS | MsgKind::GetM => TrafficClass::Request,
            MsgKind::HammerProbe { .. }
            | MsgKind::FwdGetS { .. }
            | MsgKind::FwdGetM { .. }
            | MsgKind::Inv { .. } => TrafficClass::ForwardedOrInvalidation,
            MsgKind::TokenData { .. } | MsgKind::Data { .. } | MsgKind::PutM => {
                TrafficClass::DataResponseOrWriteback
            }
            MsgKind::PersistentRequest { .. }
            | MsgKind::PersistentActivate { .. }
            | MsgKind::PersistentDeactivate
            | MsgKind::PersistentAck
            | MsgKind::PersistentComplete => TrafficClass::ReissueOrPersistent,
            MsgKind::PutS
            | MsgKind::TokenOnly { .. }
            | MsgKind::InvAck
            | MsgKind::WbAck
            | MsgKind::WbCancel
            | MsgKind::Unblock
            | MsgKind::ExclusiveUnblock => TrafficClass::OtherControl,
        }
    }

    /// Label used in experiment reports.
    pub fn label(self) -> &'static str {
        match self {
            TrafficClass::Request => "requests",
            TrafficClass::ForwardedOrInvalidation => "forwards & invalidations",
            TrafficClass::DataResponseOrWriteback => "data responses & writebacks",
            TrafficClass::OtherControl => "other non-data messages",
            TrafficClass::ReissueOrPersistent => "reissues & persistent requests",
        }
    }
}

impl fmt::Display for TrafficClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Interconnect traffic, accumulated per traffic class, in both messages and
/// link-bytes (a broadcast that crosses five links counts its size five
/// times, matching how the paper reports interconnect traffic).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TrafficStats {
    // Flat per-class counters indexed by `TrafficClass::index`: `record`
    // runs once per injected message on the hot send path, so the class
    // buckets are arrays rather than maps.
    bytes: [u64; 5],
    messages: [u64; 5],
    link_bytes: [u64; 5],
}

impl TrafficStats {
    /// Creates an empty traffic accumulator.
    pub fn new() -> Self {
        TrafficStats::default()
    }

    /// Records one message that will traverse `link_crossings` links.
    #[inline]
    pub fn record(&mut self, class: TrafficClass, size_bytes: u64, link_crossings: u64) {
        let i = class.index();
        self.bytes[i] += size_bytes;
        self.messages[i] += 1;
        self.link_bytes[i] += size_bytes * link_crossings;
    }

    /// Endpoint bytes recorded for a class (each message counted once).
    pub fn bytes(&self, class: TrafficClass) -> u64 {
        self.bytes[class.index()]
    }

    /// Messages recorded for a class.
    pub fn messages(&self, class: TrafficClass) -> u64 {
        self.messages[class.index()]
    }

    /// Link-crossing bytes recorded for a class (the paper's traffic metric).
    pub fn link_bytes(&self, class: TrafficClass) -> u64 {
        self.link_bytes[class.index()]
    }

    /// Total endpoint bytes across all classes.
    pub fn total_bytes(&self) -> u64 {
        self.bytes.iter().sum()
    }

    /// Total messages across all classes.
    pub fn total_messages(&self) -> u64 {
        self.messages.iter().sum()
    }

    /// Total link-crossing bytes across all classes.
    pub fn total_link_bytes(&self) -> u64 {
        self.link_bytes.iter().sum()
    }

    /// Merges another accumulator into this one.
    pub fn merge(&mut self, other: &TrafficStats) {
        for i in 0..5 {
            self.bytes[i] += other.bytes[i];
            self.messages[i] += other.messages[i];
            self.link_bytes[i] += other.link_bytes[i];
        }
    }

    /// Serializes all per-class counters.
    pub fn save_state(&self, w: &mut SnapWriter) {
        for arr in [&self.bytes, &self.messages, &self.link_bytes] {
            for &v in arr {
                w.u64(v);
            }
        }
    }

    /// Rebuilds from [`TrafficStats::save_state`] bytes.
    pub fn load_state(r: &mut SnapReader<'_>) -> Result<TrafficStats, SnapshotError> {
        let mut out = TrafficStats::new();
        for arr in [&mut out.bytes, &mut out.messages, &mut out.link_bytes] {
            for v in arr.iter_mut() {
                *v = r.u64()?;
            }
        }
        Ok(out)
    }
}

/// Cache-miss statistics for one node.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MissStats {
    /// Demand accesses that hit in the L1.
    pub l1_hits: u64,
    /// Demand accesses that hit in the L2 (after missing in the L1).
    pub l2_hits: u64,
    /// Read misses that left the node.
    pub read_misses: u64,
    /// Write misses that left the node.
    pub write_misses: u64,
    /// Upgrade misses (had a shared copy, needed exclusive).
    pub upgrade_misses: u64,
    /// Misses satisfied by another cache (cache-to-cache transfers).
    pub cache_to_cache: u64,
    /// Misses satisfied by memory.
    pub from_memory: u64,
    /// Sum of miss latencies, for averaging.
    pub total_miss_latency: Cycle,
    /// Number of completed misses contributing to `total_miss_latency`.
    pub completed_misses: u64,
    /// Writebacks (dirty evictions) sent to memory.
    pub writebacks: u64,
}

impl MissStats {
    /// Total misses that left the node.
    pub fn total_misses(&self) -> u64 {
        self.read_misses + self.write_misses + self.upgrade_misses
    }

    /// Average latency of completed misses, in cycles.
    pub fn average_miss_latency(&self) -> f64 {
        if self.completed_misses == 0 {
            0.0
        } else {
            self.total_miss_latency as f64 / self.completed_misses as f64
        }
    }

    /// Fraction of completed misses that were cache-to-cache transfers.
    pub fn cache_to_cache_fraction(&self) -> f64 {
        let done = self.cache_to_cache + self.from_memory;
        if done == 0 {
            0.0
        } else {
            self.cache_to_cache as f64 / done as f64
        }
    }

    /// Serializes every counter.
    pub fn save_state(&self, w: &mut SnapWriter) {
        for v in [
            self.l1_hits,
            self.l2_hits,
            self.read_misses,
            self.write_misses,
            self.upgrade_misses,
            self.cache_to_cache,
            self.from_memory,
            self.total_miss_latency,
            self.completed_misses,
            self.writebacks,
        ] {
            w.u64(v);
        }
    }

    /// Rebuilds from [`MissStats::save_state`] bytes.
    pub fn load_state(r: &mut SnapReader<'_>) -> Result<MissStats, SnapshotError> {
        Ok(MissStats {
            l1_hits: r.u64()?,
            l2_hits: r.u64()?,
            read_misses: r.u64()?,
            write_misses: r.u64()?,
            upgrade_misses: r.u64()?,
            cache_to_cache: r.u64()?,
            from_memory: r.u64()?,
            total_miss_latency: r.u64()?,
            completed_misses: r.u64()?,
            writebacks: r.u64()?,
        })
    }

    /// Merges another node's statistics into this one.
    pub fn merge(&mut self, other: &MissStats) {
        self.l1_hits += other.l1_hits;
        self.l2_hits += other.l2_hits;
        self.read_misses += other.read_misses;
        self.write_misses += other.write_misses;
        self.upgrade_misses += other.upgrade_misses;
        self.cache_to_cache += other.cache_to_cache;
        self.from_memory += other.from_memory;
        self.total_miss_latency += other.total_miss_latency;
        self.completed_misses += other.completed_misses;
        self.writebacks += other.writebacks;
    }
}

/// Reissue/persistent-request statistics (Table 2 of the paper).
///
/// Only the Token Coherence protocol populates these; they are zero for the
/// baselines.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReissueStats {
    /// Misses satisfied by their first transient request.
    pub not_reissued: u64,
    /// Misses reissued exactly once.
    pub reissued_once: u64,
    /// Misses reissued more than once (but satisfied without a persistent
    /// request).
    pub reissued_more: u64,
    /// Misses that escalated to a persistent request.
    pub persistent: u64,
}

impl ReissueStats {
    /// Total misses recorded.
    pub fn total(&self) -> u64 {
        self.not_reissued + self.reissued_once + self.reissued_more + self.persistent
    }

    /// Percentage of misses in each category, in Table 2 column order
    /// (not reissued, reissued once, reissued more than once, persistent).
    pub fn percentages(&self) -> [f64; 4] {
        let total = self.total();
        if total == 0 {
            return [0.0; 4];
        }
        let pct = |x: u64| 100.0 * x as f64 / total as f64;
        [
            pct(self.not_reissued),
            pct(self.reissued_once),
            pct(self.reissued_more),
            pct(self.persistent),
        ]
    }

    /// Merges another node's statistics into this one.
    pub fn merge(&mut self, other: &ReissueStats) {
        self.not_reissued += other.not_reissued;
        self.reissued_once += other.reissued_once;
        self.reissued_more += other.reissued_more;
        self.persistent += other.persistent;
    }

    /// Serializes every counter.
    pub fn save_state(&self, w: &mut SnapWriter) {
        for v in [
            self.not_reissued,
            self.reissued_once,
            self.reissued_more,
            self.persistent,
        ] {
            w.u64(v);
        }
    }

    /// Rebuilds from [`ReissueStats::save_state`] bytes.
    pub fn load_state(r: &mut SnapReader<'_>) -> Result<ReissueStats, SnapshotError> {
        Ok(ReissueStats {
            not_reissued: r.u64()?,
            reissued_once: r.u64()?,
            reissued_more: r.u64()?,
            persistent: r.u64()?,
        })
    }
}

/// Per-structure occupancy of the sparse line-state plane — the compact
/// per-block-address tables (MSHRs, writeback buffers and handshake windows,
/// home-memory state, persistent-request entries) every controller keeps.
///
/// Each controller reports its own peaks
/// ([`crate::CoherenceController::line_state_stats`]); the runner sums them
/// across nodes, so the figures are the total simulated-state working set.
/// `state_bytes` prices the backing arrays of those tables at end of run
/// (they never shrink, so it is the peak footprint) — an *estimate* of the
/// plane's host-memory cost, deliberately excluding the fixed-capacity
/// L1/L2 tag arrays, which are dense, preallocated, and configuration-sized.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LineStateStats {
    /// Peak simultaneously outstanding MSHR entries.
    pub mshr_peak: u64,
    /// Peak writeback-buffer entries (dirty evictions awaiting handshake).
    pub wb_buffer_peak: u64,
    /// Peak open writeback-handshake windows (snooping only).
    pub wb_window_peak: u64,
    /// Peak home-memory blocks with materialized protocol state.
    pub home_peak: u64,
    /// Peak active persistent-request table entries (TokenB only).
    pub persistent_peak: u64,
    /// Bytes allocated by the line-state tables backing the above.
    pub state_bytes: u64,
    /// What the same peak populations would have cost on the retired
    /// `BTreeMap`/`HashMap` plane (documented estimate; see
    /// `tc_memsys::LineTable::retired_container_bytes_estimate`) — the
    /// before/after comparison `BENCH_engine.json` records.
    pub retired_bytes_est: u64,
}

impl LineStateStats {
    /// Merges another node's (or structure's) peaks into this aggregate by
    /// summation: the total is an upper bound on the simultaneous
    /// system-wide working set.
    pub fn merge(&mut self, other: &LineStateStats) {
        self.mshr_peak += other.mshr_peak;
        self.wb_buffer_peak += other.wb_buffer_peak;
        self.wb_window_peak += other.wb_window_peak;
        self.home_peak += other.home_peak;
        self.persistent_peak += other.persistent_peak;
        self.state_bytes += other.state_bytes;
        self.retired_bytes_est += other.retired_bytes_est;
    }

    /// Total peak entries across every structure.
    pub fn total_entries(&self) -> u64 {
        self.mshr_peak
            + self.wb_buffer_peak
            + self.wb_window_peak
            + self.home_peak
            + self.persistent_peak
    }

    /// Serializes every peak.
    pub fn save_state(&self, w: &mut SnapWriter) {
        for v in [
            self.mshr_peak,
            self.wb_buffer_peak,
            self.wb_window_peak,
            self.home_peak,
            self.persistent_peak,
            self.state_bytes,
            self.retired_bytes_est,
        ] {
            w.u64(v);
        }
    }

    /// Rebuilds from [`LineStateStats::save_state`] bytes.
    pub fn load_state(r: &mut SnapReader<'_>) -> Result<LineStateStats, SnapshotError> {
        Ok(LineStateStats {
            mshr_peak: r.u64()?,
            wb_buffer_peak: r.u64()?,
            wb_window_peak: r.u64()?,
            home_peak: r.u64()?,
            persistent_peak: r.u64()?,
            state_bytes: r.u64()?,
            retired_bytes_est: r.u64()?,
        })
    }
}

/// Engine-level (simulator, not simulated-system) statistics for one run.
///
/// These are the numbers bottleneck hunts start from: how deep the event
/// queue got tells you whether queue operations dominate, the message
/// arena's peak occupancy tells you how much payload memory the in-flight
/// message population actually needs, and the line-state plane's peaks tell
/// you how big the simulated-state working set grew. All are high-water
/// marks over the whole run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Peak number of events pending in the event queue at any instant.
    pub peak_queue_depth: u64,
    /// Peak number of in-flight messages parked in the payload arena at any
    /// instant (every scheduled `Send` plus every undelivered `Deliver`).
    pub peak_arena_occupancy: u64,
    /// Total events the engine delivered over the run (the numerator of the
    /// events-per-second throughput metric).
    pub events_delivered: u64,
    /// Double-releases caught by the message arena's accounting guard.
    /// Always zero in a correct engine; a non-zero value means a payload
    /// handle was released twice past the generation check and the run's
    /// bookkeeping cannot be trusted.
    pub arena_accounting_errors: u64,
    /// Per-structure peaks and estimated byte footprint of the sparse
    /// line-state plane, summed across nodes.
    pub state: LineStateStats,
    /// Fault-injection counters (all zero when the run used
    /// [`FaultSpec::none`](crate::fault::FaultSpec::none)).
    pub faults: crate::fault::FaultStats,
    /// Adversarial-scheduling counters (all zero when the run used
    /// [`AdversarySpec::none`](crate::adversary::AdversarySpec::none)).
    pub adversary: crate::adversary::AdversaryStats,
    /// Sharded-execution telemetry (all zero/empty when the run used the
    /// serial engine).
    pub sharding: ShardStats,
}

impl EngineStats {
    /// Serializes every counter, including the nested planes.
    pub fn save_state(&self, w: &mut SnapWriter) {
        w.u64(self.peak_queue_depth);
        w.u64(self.peak_arena_occupancy);
        w.u64(self.events_delivered);
        w.u64(self.arena_accounting_errors);
        self.state.save_state(w);
        self.faults.save_state(w);
        self.adversary.save_state(w);
        self.sharding.save_state(w);
    }

    /// Rebuilds from [`EngineStats::save_state`] bytes.
    pub fn load_state(r: &mut SnapReader<'_>) -> Result<EngineStats, SnapshotError> {
        Ok(EngineStats {
            peak_queue_depth: r.u64()?,
            peak_arena_occupancy: r.u64()?,
            events_delivered: r.u64()?,
            arena_accounting_errors: r.u64()?,
            state: LineStateStats::load_state(r)?,
            faults: crate::fault::FaultStats::load_state(r)?,
            adversary: crate::adversary::AdversaryStats::load_state(r)?,
            sharding: ShardStats::load_state(r)?,
        })
    }
}

/// Telemetry from the sharded (conservative-PDES) runner: how the run was
/// partitioned, how the windowed synchronization behaved, and the per-shard
/// engine peaks.
///
/// Capacity telemetry, not behavior: per-shard queue/arena peaks and stall
/// counts legitimately differ between shard counts even though the
/// simulated run is bit-identical, so the shard-determinism tests compare
/// reports through a view with this (and the global peaks) normalized out.
/// All-default on serial (`shards == 0`) runs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Worker shards the run was partitioned into (0 = serial engine).
    pub shards: u32,
    /// The conservative lookahead window, in ns, derived from the
    /// topology's minimum inter-node path latency.
    pub lookahead_ns: u64,
    /// Barrier windows executed (commit rounds at window boundaries).
    pub windows: u64,
    /// Sync stalls: window rounds in which a shard had no local events to
    /// process and only waited at the barrier, summed across shards. High
    /// stall counts relative to `windows * shards` mean the partition is
    /// imbalanced or the lookahead window is small relative to activity.
    pub sync_stalls: u64,
    /// Events delivered by each shard's queue, indexed by shard.
    pub shard_events: Vec<u64>,
    /// Peak event-queue depth per shard.
    pub shard_peak_queue: Vec<u64>,
    /// Peak message-arena occupancy per shard.
    pub shard_peak_arena: Vec<u64>,
}

impl ShardStats {
    /// Serializes every counter.
    pub fn save_state(&self, w: &mut SnapWriter) {
        w.u32(self.shards);
        w.u64(self.lookahead_ns);
        w.u64(self.windows);
        w.u64(self.sync_stalls);
        w.seq(self.shard_events.iter(), |w, &v| w.u64(v));
        w.seq(self.shard_peak_queue.iter(), |w, &v| w.u64(v));
        w.seq(self.shard_peak_arena.iter(), |w, &v| w.u64(v));
    }

    /// Rebuilds from [`ShardStats::save_state`] bytes.
    pub fn load_state(r: &mut SnapReader<'_>) -> Result<ShardStats, SnapshotError> {
        Ok(ShardStats {
            shards: r.u32()?,
            lookahead_ns: r.u64()?,
            windows: r.u64()?,
            sync_stalls: r.u64()?,
            shard_events: r.seq(|r| r.u64())?,
            shard_peak_queue: r.seq(|r| r.u64())?,
            shard_peak_arena: r.seq(|r| r.u64())?,
        })
    }
}

/// Statistics exported by a coherence controller.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ControllerStats {
    /// Cache and miss statistics.
    pub misses: MissStats,
    /// Reissue histogram (Token Coherence only).
    pub reissue: ReissueStats,
    /// Number of persistent requests this node initiated.
    pub persistent_requests_initiated: u64,
    /// Number of messages this controller sent.
    pub messages_sent: u64,
    /// Number of messages this controller received.
    pub messages_received: u64,
    /// Protocol-specific named counters (for example directory lookups or
    /// snoop responses), reported verbatim in experiment output.
    pub extra: BTreeMap<&'static str, u64>,
}

impl ControllerStats {
    /// Creates an empty statistics record.
    pub fn new() -> Self {
        ControllerStats::default()
    }

    /// Adds `amount` to a protocol-specific named counter.
    pub fn bump(&mut self, counter: &'static str, amount: u64) {
        *self.extra.entry(counter).or_insert(0) += amount;
    }

    /// Reads a protocol-specific named counter.
    pub fn counter(&self, counter: &str) -> u64 {
        self.extra.get(counter).copied().unwrap_or(0)
    }

    /// Merges another controller's statistics into this one.
    pub fn merge(&mut self, other: &ControllerStats) {
        self.misses.merge(&other.misses);
        self.reissue.merge(&other.reissue);
        self.persistent_requests_initiated += other.persistent_requests_initiated;
        self.messages_sent += other.messages_sent;
        self.messages_received += other.messages_received;
        for (k, v) in &other.extra {
            *self.extra.entry(k).or_insert(0) += v;
        }
    }

    /// Serializes every counter, including the named extras (in the
    /// `BTreeMap`'s deterministic key order).
    pub fn save_state(&self, w: &mut SnapWriter) {
        self.misses.save_state(w);
        self.reissue.save_state(w);
        w.u64(self.persistent_requests_initiated);
        w.u64(self.messages_sent);
        w.u64(self.messages_received);
        w.seq(self.extra.iter(), |w, (&k, &v)| {
            w.str(k);
            w.u64(v);
        });
    }

    /// Rebuilds from [`ControllerStats::save_state`] bytes. Counter names
    /// round-trip through [`intern_counter_name`].
    pub fn load_state(r: &mut SnapReader<'_>) -> Result<ControllerStats, SnapshotError> {
        let misses = MissStats::load_state(r)?;
        let reissue = ReissueStats::load_state(r)?;
        let persistent_requests_initiated = r.u64()?;
        let messages_sent = r.u64()?;
        let messages_received = r.u64()?;
        let entries = r.seq(|r| {
            let name = r.str()?;
            let value = r.u64()?;
            Ok((intern_counter_name(&name), value))
        })?;
        Ok(ControllerStats {
            misses,
            reissue,
            persistent_requests_initiated,
            messages_sent,
            messages_received,
            extra: entries.into_iter().collect(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::BlockAddr;
    use crate::ids::NodeId;
    use crate::message::{DataPayload, Destination, Vnet};

    fn msg(kind: MsgKind) -> Message {
        Message::new(
            NodeId::new(0),
            Destination::Broadcast,
            BlockAddr::new(1),
            kind,
            Vnet::Request,
            0,
        )
    }

    #[test]
    fn classification_matches_paper_categories() {
        assert_eq!(TrafficClass::of(&msg(MsgKind::GetS)), TrafficClass::Request);
        assert_eq!(
            TrafficClass::of(&msg(MsgKind::Inv {
                requester: NodeId::new(1)
            })),
            TrafficClass::ForwardedOrInvalidation
        );
        assert_eq!(
            TrafficClass::of(&msg(MsgKind::TokenData {
                tokens: 1,
                owner: false,
                dirty: false,
                from_memory: true,
                payload: DataPayload::default(),
            })),
            TrafficClass::DataResponseOrWriteback
        );
        assert_eq!(
            TrafficClass::of(&msg(MsgKind::TokenOnly { tokens: 1 })),
            TrafficClass::OtherControl
        );
        assert_eq!(
            TrafficClass::of(&msg(MsgKind::PersistentRequest { write: true })),
            TrafficClass::ReissueOrPersistent
        );
    }

    #[test]
    fn reissued_requests_are_classified_separately() {
        let mut m = msg(MsgKind::GetM);
        m.reissue = true;
        assert_eq!(TrafficClass::of(&m), TrafficClass::ReissueOrPersistent);
    }

    #[test]
    fn traffic_stats_accumulate_and_merge() {
        let mut a = TrafficStats::new();
        a.record(TrafficClass::Request, 8, 3);
        a.record(TrafficClass::Request, 8, 2);
        a.record(TrafficClass::DataResponseOrWriteback, 72, 2);
        assert_eq!(a.bytes(TrafficClass::Request), 16);
        assert_eq!(a.messages(TrafficClass::Request), 2);
        assert_eq!(a.link_bytes(TrafficClass::Request), 40);
        assert_eq!(a.total_bytes(), 88);
        assert_eq!(a.total_link_bytes(), 40 + 144);

        let mut b = TrafficStats::new();
        b.record(TrafficClass::Request, 8, 1);
        b.merge(&a);
        assert_eq!(b.messages(TrafficClass::Request), 3);
        assert_eq!(b.total_messages(), 4);
    }

    #[test]
    fn miss_stats_compute_averages() {
        let m = MissStats {
            read_misses: 2,
            write_misses: 1,
            completed_misses: 3,
            total_miss_latency: 300,
            cache_to_cache: 2,
            from_memory: 1,
            ..MissStats::default()
        };
        assert_eq!(m.total_misses(), 3);
        assert!((m.average_miss_latency() - 100.0).abs() < 1e-9);
        assert!((m.cache_to_cache_fraction() - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn empty_miss_stats_do_not_divide_by_zero() {
        let m = MissStats::default();
        assert_eq!(m.average_miss_latency(), 0.0);
        assert_eq!(m.cache_to_cache_fraction(), 0.0);
    }

    #[test]
    fn reissue_percentages_sum_to_one_hundred() {
        let r = ReissueStats {
            not_reissued: 97,
            reissued_once: 2,
            reissued_more: 1,
            persistent: 0,
        };
        let p = r.percentages();
        assert!((p.iter().sum::<f64>() - 100.0).abs() < 1e-9);
        assert!((p[0] - 97.0).abs() < 1e-9);
    }

    #[test]
    fn empty_reissue_stats_percentages_are_zero() {
        assert_eq!(ReissueStats::default().percentages(), [0.0; 4]);
    }

    #[test]
    fn controller_stats_merge_and_counters() {
        let mut a = ControllerStats::new();
        a.bump("directory_lookups", 5);
        a.messages_sent = 10;
        let mut b = ControllerStats::new();
        b.bump("directory_lookups", 3);
        b.messages_sent = 2;
        a.merge(&b);
        assert_eq!(a.counter("directory_lookups"), 8);
        assert_eq!(a.messages_sent, 12);
        assert_eq!(a.counter("missing"), 0);
    }
}
