//! A minimal JSON value type: the matching *reader* for the hand-rolled
//! campaign JSON writer (the offline build environment has no serde).
//!
//! The writer side of the workspace ([`tc_system`'s campaign serializer and
//! the serve wire format]) emits compact JSON with a fixed escaping policy.
//! This module parses that JSON back into a [`Json`] tree — and re-emits it
//! *byte-identically*: numbers are kept as their raw source tokens and
//! object members preserve insertion order, so
//! `Json::parse(text)?.to_string() == text` holds for everything the
//! workspace writers produce. That round-trip is pinned by tests and is what
//! lets the campaign service's clients parse, inspect, and forward streamed
//! reports without perturbing a byte.
//!
//! The parser accepts standard JSON (insignificant whitespace, all escape
//! forms, nested containers up to a fixed depth) and rejects everything else
//! with a [`JsonError`] carrying the byte offset — it parses untrusted
//! network input, so there is a hard recursion limit and no panics.

use std::fmt;

/// Maximum container nesting depth the parser accepts. Deep enough for any
/// report the workspace emits, shallow enough that adversarial input cannot
/// overflow the stack.
const MAX_DEPTH: usize = 64;

/// A parsed JSON value.
///
/// Numbers are stored as their raw source token (`Json::Num("3.20")` keeps
/// the trailing zero) so re-serialization is byte-identical; use
/// [`Json::as_u64`] / [`Json::as_f64`] to interpret them. Objects preserve
/// member order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, kept as the raw token it was written as.
    Num(String),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in member order.
    Obj(Vec<(String, Json)>),
}

/// A parse failure: what went wrong and the byte offset it went wrong at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input where the error was detected.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Parses one JSON document. Trailing non-whitespace is an error.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] (with byte offset) on malformed input or
    /// nesting deeper than the parser's hard limit.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.error("trailing characters after the document"));
        }
        Ok(value)
    }

    /// Object member lookup (first match); `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// This number as a `u64`, if it is one (no fraction, in range).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(tok) => tok.parse().ok(),
            _ => None,
        }
    }

    /// This number as an `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(tok) => tok.parse().ok(),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The members in order, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(members) => Some(members),
            _ => None,
        }
    }
}

/// Appends `value` to `out` with the workspace writers' escaping policy:
/// `"` and `\` are backslash-escaped, `\n` stays readable, every other
/// control character becomes `\u00XX`, everything else passes through.
pub fn escape_json_str_into(out: &mut String, value: &str) {
    for c in value.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

impl fmt::Display for Json {
    /// Compact serialization, byte-identical to what the workspace's JSON
    /// writers emit (numbers verbatim, members in order, writer escaping).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(true) => f.write_str("true"),
            Json::Bool(false) => f.write_str("false"),
            Json::Num(tok) => f.write_str(tok),
            Json::Str(s) => {
                let mut out = String::with_capacity(s.len() + 2);
                out.push('"');
                escape_json_str_into(&mut out, s);
                out.push('"');
                f.write_str(&out)
            }
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(members) => {
                f.write_str("{")?;
                for (i, (key, value)) in members.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    let mut out = String::with_capacity(key.len() + 3);
                    out.push('"');
                    escape_json_str_into(&mut out, key);
                    out.push_str("\":");
                    f.write_str(&out)?;
                    write!(f, "{value}")?;
                }
                f.write_str("}")
            }
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!("expected `{}`", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(format!("expected `{word}`")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.error("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(self.error(format!("unexpected `{}`", other as char))),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.error("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.error("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let code = self.hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by an escaped low surrogate.
                            let c = if (0xD800..0xDC00).contains(&code) {
                                if self.peek() != Some(b'\\') {
                                    return Err(self.error("unpaired surrogate"));
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return Err(self.error("unpaired surrogate"));
                                }
                                self.pos += 1;
                                let low = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(self.error("invalid low surrogate"));
                                }
                                let combined = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(combined)
                                    .ok_or_else(|| self.error("invalid surrogate pair"))?
                            } else if (0xDC00..0xE000).contains(&code) {
                                return Err(self.error("unpaired low surrogate"));
                            } else {
                                char::from_u32(code)
                                    .ok_or_else(|| self.error("invalid \\u escape"))?
                            };
                            out.push(c);
                            continue; // hex4 already advanced pos
                        }
                        _ => return Err(self.error("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => {
                    return Err(self.error("unescaped control character in string"));
                }
                Some(_) => {
                    // Consume one UTF-8 scalar. The input is a &str, so the
                    // encoding is already valid; find the next boundary.
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xC0) == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .expect("input is valid UTF-8"),
                    );
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut code: u32 = 0;
        for _ in 0..4 {
            let digit = match self.peek() {
                Some(b @ b'0'..=b'9') => (b - b'0') as u32,
                Some(b @ b'a'..=b'f') => (b - b'a' + 10) as u32,
                Some(b @ b'A'..=b'F') => (b - b'A' + 10) as u32,
                _ => return Err(self.error("invalid \\u escape")),
            };
            code = code * 16 + digit;
            self.pos += 1;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: `0` or a nonzero digit followed by digits.
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.error("invalid number")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.error("digits required after decimal point"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.error("digits required in exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let token = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("number tokens are ASCII")
            .to_string();
        Ok(Json::Num(token))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_parse_and_round_trip() {
        for text in [
            "null", "true", "false", "0", "-7", "3.20", "1.5e-3", "\"x\"",
        ] {
            let v = Json::parse(text).unwrap();
            assert_eq!(v.to_string(), text, "{text}");
        }
    }

    #[test]
    fn numbers_keep_their_raw_token() {
        let v = Json::parse("[1.50,0.500,12]").unwrap();
        assert_eq!(v.to_string(), "[1.50,0.500,12]");
        let items = v.as_array().unwrap();
        assert_eq!(items[0].as_f64(), Some(1.5));
        assert_eq!(items[2].as_u64(), Some(12));
        assert_eq!(items[0].as_u64(), None, "fractional is not a u64");
    }

    #[test]
    fn objects_preserve_member_order() {
        let text = "{\"zebra\":1,\"alpha\":2,\"mid\":{\"b\":[true,null]}}";
        let v = Json::parse(text).unwrap();
        assert_eq!(v.to_string(), text);
        assert_eq!(v.get("alpha").and_then(Json::as_u64), Some(2));
        assert_eq!(
            v.get("mid").and_then(|m| m.get("b")).map(|b| b.to_string()),
            Some("[true,null]".to_string())
        );
    }

    #[test]
    fn writer_escapes_round_trip() {
        // Exactly the escaping policy of the hand-rolled writers.
        let text = "{\"label\":\"a \\\"quoted\\\\label\\\"\\n\\u0007\"}";
        let v = Json::parse(text).unwrap();
        assert_eq!(v.to_string(), text);
        assert_eq!(
            v.get("label").and_then(Json::as_str),
            Some("a \"quoted\\label\"\n\u{7}")
        );
    }

    #[test]
    fn whitespace_is_insignificant_but_not_re_emitted() {
        let v = Json::parse(" { \"a\" : [ 1 , 2 ] } ").unwrap();
        assert_eq!(v.to_string(), "{\"a\":[1,2]}");
    }

    #[test]
    fn surrogate_pairs_decode() {
        let v = Json::parse("\"\\ud83d\\ude00\"").unwrap();
        assert_eq!(v.as_str(), Some("\u{1F600}"));
    }

    #[test]
    fn malformed_documents_are_rejected_with_offsets() {
        for text in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\" 1}",
            "tru",
            "01",
            "1.",
            "1e",
            "\"unterminated",
            "\"bad \\q escape\"",
            "\"\\ud800 unpaired\"",
            "{}extra",
            "nan",
        ] {
            let err = Json::parse(text).expect_err(text);
            assert!(!err.message.is_empty());
            assert!(err.offset <= text.len());
            assert!(err.to_string().contains("byte"));
        }
    }

    #[test]
    fn deep_nesting_is_bounded_not_a_stack_overflow() {
        let deep = "[".repeat(10_000) + &"]".repeat(10_000);
        let err = Json::parse(&deep).expect_err("must reject");
        assert!(err.message.contains("deep"));
        // A depth well under the limit parses fine.
        let ok = "[".repeat(40) + &"]".repeat(40);
        assert!(Json::parse(&ok).is_ok());
    }

    #[test]
    fn accessor_type_mismatches_are_none() {
        let v = Json::parse("{\"s\":\"x\",\"n\":3}").unwrap();
        assert_eq!(v.get("s").and_then(Json::as_u64), None);
        assert_eq!(v.get("n").and_then(Json::as_str), None);
        assert_eq!(v.get("missing"), None);
        assert_eq!(v.as_array(), None);
        assert!(Json::parse("true").unwrap().as_bool() == Some(true));
    }
}
