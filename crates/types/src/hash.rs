//! A fast, deterministic hasher for hot-path hash maps.
//!
//! The simulator's inner loops index hash maps by small dense identifiers
//! (block addresses, request ids, destination patterns). The standard
//! library's default SipHash is DoS-resistant but costs more than the map
//! operation it guards; simulation state is never attacker-controlled, so
//! every hot map uses this multiply-xor hasher (the FxHash construction used
//! by rustc) instead. The external `fxhash`/`rustc-hash` crates are not
//! vendored in the offline build environment, hence this local copy.
//!
//! Determinism matters more than speed here: unlike `RandomState`, this
//! hasher has no per-process seed, so map iteration order — and therefore
//! any behaviour accidentally derived from it — is identical across runs.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The FxHash construction: rotate, xor, multiply per word.
#[derive(Debug, Clone, Copy, Default)]
pub struct FastHasher {
    state: u64,
}

impl FastHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }
}

/// A `HashMap` using [`FastHasher`].
pub type FastHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FastHasher>>;

/// A `HashSet` using [`FastHasher`].
pub type FastHashSet<K> = HashSet<K, BuildHasherDefault<FastHasher>>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash + ?Sized>(value: &T) -> u64 {
        BuildHasherDefault::<FastHasher>::default().hash_one(value)
    }

    #[test]
    fn hashing_is_deterministic() {
        assert_eq!(hash_of(&12345u64), hash_of(&12345u64));
        assert_eq!(hash_of(&"hello"), hash_of(&"hello"));
    }

    #[test]
    fn different_values_hash_differently() {
        assert_ne!(hash_of(&1u64), hash_of(&2u64));
        assert_ne!(hash_of(&"a"), hash_of(&"b"));
    }

    #[test]
    fn map_and_set_round_trip() {
        let mut map: FastHashMap<u64, &str> = FastHashMap::default();
        map.insert(7, "seven");
        assert_eq!(map.get(&7), Some(&"seven"));
        let mut set: FastHashSet<u32> = FastHashSet::default();
        assert!(set.insert(3));
        assert!(set.contains(&3));
    }

    #[test]
    fn unaligned_byte_tails_are_hashed() {
        // 9 bytes exercises both the 8-byte chunk and the remainder path.
        assert_ne!(hash_of(&[0u8; 9][..]), hash_of(&[1u8; 9][..]));
    }
}
