//! Token Coherence: the paper's primary contribution.
//!
//! Token Coherence decouples a cache-coherence protocol into two parts:
//!
//! * a **correctness substrate** that guarantees *safety* by token counting
//!   (each block has `T` tokens; reading requires a token and valid data,
//!   writing requires all `T`) and *starvation freedom* via **persistent
//!   requests** arbitrated at each block's home node; and
//! * a **performance protocol** that issues unordered *transient* requests as
//!   hints. Transient requests usually succeed; when they race and fail, the
//!   protocol simply reissues them, and in the worst case falls back to a
//!   persistent request. Performance-protocol bugs can cost performance but
//!   never correctness.
//!
//! This crate implements the substrate ([`state`], [`persistent`],
//! [`arbiter`]) and **TokenB** ([`TokenBController`]), the broadcast
//! performance protocol the paper evaluates: transient requests are broadcast
//! to all nodes, components respond as a MOSI snooping protocol would
//! (including the migratory-sharing optimization), and unsatisfied requests
//! are reissued after roughly twice the average miss latency plus a
//! randomized backoff, escalating to a persistent request after about four
//! reissues.
//!
//! The controller implements the protocol-agnostic
//! [`tc_types::CoherenceController`] interface, so the system runner can
//! drive it interchangeably with the baseline Snooping, Directory, and Hammer
//! protocols.
//!
//! # Example
//!
//! ```
//! use tc_core::TokenBController;
//! use tc_types::{CoherenceController, NodeId, SystemConfig};
//!
//! let config = SystemConfig::isca03_default();
//! let controller = TokenBController::new(NodeId::new(0), &config);
//! assert_eq!(controller.protocol_name(), "TokenB");
//! assert_eq!(controller.outstanding_misses(), 0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod arbiter;
pub mod persistent;
pub mod state;
pub mod timeout;
pub mod tokenb;

pub use arbiter::{ArbiterAction, PersistentArbiter};
pub use persistent::{PersistentEntry, PersistentTable};
pub use state::{MemTokens, TokenLine};
pub use timeout::MissLatencyTracker;
pub use tokenb::TokenBController;
