//! The per-home-node persistent-request arbiter.
//!
//! Each home memory module runs a small arbiter state machine (Section 3.2).
//! Starving processors direct persistent requests to the home of the block;
//! the arbiter activates at most one persistent request at a time by
//! informing every node, waits for acknowledgements (to eliminate races),
//! and deactivates the request when the starving requester reports that it
//! has been satisfied. Queued requests are served in FIFO order, which makes
//! the mechanism fair and therefore starvation-free.

use std::collections::VecDeque;

use tc_sim::{SnapReader, SnapWriter, SnapshotError};
use tc_types::{BlockAddr, NodeId};

/// A request waiting at (or being served by) the arbiter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct QueuedRequest {
    addr: BlockAddr,
    requester: NodeId,
    write: bool,
}

/// What the controller hosting the arbiter must do next: broadcast an
/// activation or deactivation to every node (and apply it locally).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArbiterAction {
    /// Tell every node to activate a persistent request.
    BroadcastActivate {
        /// Block being requested.
        addr: BlockAddr,
        /// Starving node that must receive all tokens.
        requester: NodeId,
        /// Whether the requester needs write permission.
        write: bool,
    },
    /// Tell every node to deactivate the persistent request for `addr`.
    BroadcastDeactivate {
        /// Block whose persistent request is over.
        addr: BlockAddr,
    },
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum ArbiterState {
    Idle,
    /// Activation broadcast sent; waiting for acknowledgements.
    Activating {
        request: QueuedRequest,
        acks_remaining: usize,
        complete_received: bool,
    },
    /// All nodes have acknowledged; the request is in force.
    Active {
        request: QueuedRequest,
    },
    /// Deactivation broadcast sent; waiting for acknowledgements.
    Deactivating {
        addr: BlockAddr,
        acks_remaining: usize,
    },
}

/// The persistent-request arbiter at one home node.
#[derive(Debug, Clone)]
pub struct PersistentArbiter {
    node: NodeId,
    num_nodes: usize,
    state: ArbiterState,
    queue: VecDeque<QueuedRequest>,
    activations: u64,
    /// Test-only sabotage: when set, incoming requests are silently
    /// dropped, manufacturing the starvation the fairness oracle must
    /// catch. Never set outside the adversarial test harness.
    sabotaged: bool,
}

impl PersistentArbiter {
    /// Creates the arbiter for home node `node` in a `num_nodes` system.
    pub fn new(node: NodeId, num_nodes: usize) -> Self {
        PersistentArbiter {
            node,
            num_nodes: num_nodes.max(1),
            state: ArbiterState::Idle,
            queue: VecDeque::new(),
            activations: 0,
            sabotaged: false,
        }
    }

    /// Enables or disables test-only sabotage (see the field doc).
    pub fn set_sabotage(&mut self, on: bool) {
        self.sabotaged = on;
    }

    /// Number of acknowledgements expected for each broadcast: every node
    /// except the arbiter's own (which applies the broadcast locally).
    fn acks_expected(&self) -> usize {
        self.num_nodes - 1
    }

    /// Number of activations performed so far.
    pub fn activations(&self) -> u64 {
        self.activations
    }

    /// Number of requests waiting to be activated.
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// Returns `true` if the arbiter has nothing in flight or queued.
    pub fn is_idle(&self) -> bool {
        matches!(self.state, ArbiterState::Idle) && self.queue.is_empty()
    }

    /// A starving node asks for a persistent request on `addr`.
    pub fn request(
        &mut self,
        addr: BlockAddr,
        requester: NodeId,
        write: bool,
    ) -> Vec<ArbiterAction> {
        if self.sabotaged {
            // A broken arbiter that loses requests: the starving node never
            // hears back, and only the fairness oracle can tell.
            return Vec::new();
        }
        let request = QueuedRequest {
            addr,
            requester,
            write,
        };
        // Ignore exact duplicates (a node may re-send if its first persistent
        // request raced with a deactivation).
        let duplicate_queued = self.queue.contains(&request);
        let duplicate_inflight = match &self.state {
            ArbiterState::Activating { request: r, .. } | ArbiterState::Active { request: r } => {
                *r == request
            }
            _ => false,
        };
        if !duplicate_queued && !duplicate_inflight {
            self.queue.push_back(request);
        }
        self.try_activate()
    }

    /// A node acknowledges the arbiter's most recent broadcast.
    pub fn ack(&mut self, _from: NodeId) -> Vec<ArbiterAction> {
        match &mut self.state {
            ArbiterState::Activating {
                acks_remaining,
                complete_received,
                request,
            } => {
                *acks_remaining = acks_remaining.saturating_sub(1);
                if *acks_remaining == 0 {
                    let request = *request;
                    if *complete_received {
                        // The requester was satisfied before activation even
                        // finished; tear the request down immediately.
                        self.state = ArbiterState::Deactivating {
                            addr: request.addr,
                            acks_remaining: self.acks_expected(),
                        };
                        return self.emit_deactivate(request.addr);
                    }
                    self.state = ArbiterState::Active { request };
                }
                Vec::new()
            }
            ArbiterState::Deactivating { acks_remaining, .. } => {
                *acks_remaining = acks_remaining.saturating_sub(1);
                if *acks_remaining == 0 {
                    self.state = ArbiterState::Idle;
                    return self.try_activate();
                }
                Vec::new()
            }
            _ => Vec::new(),
        }
    }

    /// The requester reports that its persistent request has been satisfied.
    pub fn complete(&mut self, addr: BlockAddr, requester: NodeId) -> Vec<ArbiterAction> {
        match &mut self.state {
            ArbiterState::Active { request }
                if request.addr == addr && request.requester == requester =>
            {
                self.state = ArbiterState::Deactivating {
                    addr,
                    acks_remaining: self.acks_expected(),
                };
                self.emit_deactivate(addr)
            }
            ArbiterState::Activating {
                request,
                complete_received,
                ..
            } if request.addr == addr && request.requester == requester => {
                *complete_received = true;
                Vec::new()
            }
            _ => {
                // The request may still be queued (satisfied by a late
                // transient response before activation); just drop it.
                self.queue
                    .retain(|r| !(r.addr == addr && r.requester == requester));
                Vec::new()
            }
        }
    }

    fn try_activate(&mut self) -> Vec<ArbiterAction> {
        if !matches!(self.state, ArbiterState::Idle) {
            return Vec::new();
        }
        let Some(request) = self.queue.pop_front() else {
            return Vec::new();
        };
        self.activations += 1;
        let acks = self.acks_expected();
        if acks == 0 {
            self.state = ArbiterState::Active { request };
        } else {
            self.state = ArbiterState::Activating {
                request,
                acks_remaining: acks,
                complete_received: false,
            };
        }
        vec![ArbiterAction::BroadcastActivate {
            addr: request.addr,
            requester: request.requester,
            write: request.write,
        }]
    }

    fn emit_deactivate(&mut self, addr: BlockAddr) -> Vec<ArbiterAction> {
        if self.acks_expected() == 0 {
            self.state = ArbiterState::Idle;
            let mut actions = vec![ArbiterAction::BroadcastDeactivate { addr }];
            actions.extend(self.try_activate());
            return actions;
        }
        vec![ArbiterAction::BroadcastDeactivate { addr }]
    }

    /// Serializes the arbiter's state machine, queue, and activation counter
    /// (node and node count are config-derived).
    pub fn save_state(&self, w: &mut SnapWriter) {
        w.u64(self.activations);
        w.bool(self.sabotaged);
        let request = |w: &mut SnapWriter, r: &QueuedRequest| {
            w.u64(r.addr.value());
            w.u32(r.requester.index() as u32);
            w.bool(r.write);
        };
        match &self.state {
            ArbiterState::Idle => w.u8(0),
            ArbiterState::Activating {
                request: req,
                acks_remaining,
                complete_received,
            } => {
                w.u8(1);
                request(w, req);
                w.usize(*acks_remaining);
                w.bool(*complete_received);
            }
            ArbiterState::Active { request: req } => {
                w.u8(2);
                request(w, req);
            }
            ArbiterState::Deactivating {
                addr,
                acks_remaining,
            } => {
                w.u8(3);
                w.u64(addr.value());
                w.usize(*acks_remaining);
            }
        }
        w.seq(self.queue.iter(), request);
    }

    /// Restores [`PersistentArbiter::save_state`] bytes onto a same-config
    /// arbiter.
    pub fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapshotError> {
        self.activations = r.u64()?;
        self.sabotaged = r.bool()?;
        let request = |r: &mut SnapReader<'_>| -> Result<QueuedRequest, SnapshotError> {
            Ok(QueuedRequest {
                addr: BlockAddr::new(r.u64()?),
                requester: NodeId::new(r.u32()? as usize),
                write: r.bool()?,
            })
        };
        self.state = match r.u8()? {
            0 => ArbiterState::Idle,
            1 => ArbiterState::Activating {
                request: request(r)?,
                acks_remaining: r.usize()?,
                complete_received: r.bool()?,
            },
            2 => ArbiterState::Active {
                request: request(r)?,
            },
            3 => ArbiterState::Deactivating {
                addr: BlockAddr::new(r.u64()?),
                acks_remaining: r.usize()?,
            },
            other => return Err(SnapshotError::Corrupt(format!("arbiter state tag {other}"))),
        };
        self.queue = r.seq(request)?.into();
        Ok(())
    }

    /// The node whose persistent request is currently being served, if any.
    pub fn active_requester(&self) -> Option<(BlockAddr, NodeId)> {
        match &self.state {
            ArbiterState::Activating { request, .. } | ArbiterState::Active { request } => {
                Some((request.addr, request.requester))
            }
            _ => None,
        }
    }

    /// The arbiter's own node.
    pub fn node(&self) -> NodeId {
        self.node
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn activate_addr(actions: &[ArbiterAction]) -> Option<BlockAddr> {
        actions.iter().find_map(|a| match a {
            ArbiterAction::BroadcastActivate { addr, .. } => Some(*addr),
            _ => None,
        })
    }

    fn deactivate_addr(actions: &[ArbiterAction]) -> Option<BlockAddr> {
        actions.iter().find_map(|a| match a {
            ArbiterAction::BroadcastDeactivate { addr } => Some(*addr),
            _ => None,
        })
    }

    #[test]
    fn single_request_activates_immediately() {
        let mut arb = PersistentArbiter::new(NodeId::new(0), 4);
        let actions = arb.request(BlockAddr::new(7), NodeId::new(2), true);
        assert_eq!(activate_addr(&actions), Some(BlockAddr::new(7)));
        assert_eq!(
            arb.active_requester(),
            Some((BlockAddr::new(7), NodeId::new(2)))
        );
        assert_eq!(arb.activations(), 1);
    }

    #[test]
    fn full_activation_completion_deactivation_cycle() {
        let mut arb = PersistentArbiter::new(NodeId::new(0), 4);
        arb.request(BlockAddr::new(7), NodeId::new(2), true);
        // Three other nodes acknowledge the activation.
        for n in 1..4 {
            assert!(arb.ack(NodeId::new(n)).is_empty());
        }
        // The requester completes; the arbiter broadcasts deactivation.
        let actions = arb.complete(BlockAddr::new(7), NodeId::new(2));
        assert_eq!(deactivate_addr(&actions), Some(BlockAddr::new(7)));
        // Deactivation acks drain back to idle.
        for n in 1..4 {
            arb.ack(NodeId::new(n));
        }
        assert!(arb.is_idle());
    }

    #[test]
    fn second_request_waits_for_the_first() {
        let mut arb = PersistentArbiter::new(NodeId::new(0), 4);
        arb.request(BlockAddr::new(1), NodeId::new(1), true);
        let actions = arb.request(BlockAddr::new(2), NodeId::new(2), false);
        assert!(actions.is_empty(), "second request must queue");
        assert_eq!(arb.queued(), 1);

        for n in 1..4 {
            arb.ack(NodeId::new(n));
        }
        arb.complete(BlockAddr::new(1), NodeId::new(1));
        // After the deactivation acks, the queued request activates.
        let mut next_activation = Vec::new();
        for n in 1..4 {
            next_activation.extend(arb.ack(NodeId::new(n)));
        }
        assert_eq!(activate_addr(&next_activation), Some(BlockAddr::new(2)));
        assert_eq!(arb.activations(), 2);
    }

    #[test]
    fn completion_before_all_activation_acks_still_deactivates() {
        let mut arb = PersistentArbiter::new(NodeId::new(0), 4);
        arb.request(BlockAddr::new(3), NodeId::new(1), false);
        // Requester completes before anyone acks.
        assert!(arb.complete(BlockAddr::new(3), NodeId::new(1)).is_empty());
        // Once the activation acks arrive, deactivation goes out.
        let mut actions = Vec::new();
        for n in 1..4 {
            actions.extend(arb.ack(NodeId::new(n)));
        }
        assert_eq!(deactivate_addr(&actions), Some(BlockAddr::new(3)));
    }

    #[test]
    fn duplicate_requests_are_not_double_queued() {
        let mut arb = PersistentArbiter::new(NodeId::new(0), 4);
        arb.request(BlockAddr::new(5), NodeId::new(1), true);
        arb.request(BlockAddr::new(5), NodeId::new(1), true);
        assert_eq!(
            arb.queued(),
            0,
            "duplicate of the in-flight request is dropped"
        );
        arb.request(BlockAddr::new(6), NodeId::new(2), true);
        arb.request(BlockAddr::new(6), NodeId::new(2), true);
        assert_eq!(arb.queued(), 1);
    }

    #[test]
    fn completion_of_a_queued_request_removes_it() {
        let mut arb = PersistentArbiter::new(NodeId::new(0), 4);
        arb.request(BlockAddr::new(1), NodeId::new(1), true);
        arb.request(BlockAddr::new(2), NodeId::new(2), true);
        assert_eq!(arb.queued(), 1);
        arb.complete(BlockAddr::new(2), NodeId::new(2));
        assert_eq!(arb.queued(), 0);
    }

    #[test]
    fn single_node_system_needs_no_acks() {
        let mut arb = PersistentArbiter::new(NodeId::new(0), 1);
        let actions = arb.request(BlockAddr::new(1), NodeId::new(0), true);
        assert_eq!(activate_addr(&actions), Some(BlockAddr::new(1)));
        let actions = arb.complete(BlockAddr::new(1), NodeId::new(0));
        assert_eq!(deactivate_addr(&actions), Some(BlockAddr::new(1)));
        assert!(arb.is_idle());
    }

    /// Satellite fairness property: N nodes competing for ONE block are
    /// served in exactly the order their persistent requests arrived.
    #[test]
    fn competing_requests_on_one_block_are_served_in_arrival_order() {
        let num_nodes = 6;
        let block = BlockAddr::new(42);
        let mut arb = PersistentArbiter::new(NodeId::new(0), num_nodes);
        // Nodes 5, 3, 1, 4, 2 all starve on the same block, in that order.
        let arrival_order = [5usize, 3, 1, 4, 2];
        let mut served = Vec::new();
        let mut actions = Vec::new();
        for &n in &arrival_order {
            actions.extend(arb.request(block, NodeId::new(n), true));
        }
        // Drive activation/completion/deactivation cycles until idle.
        while let Some(ArbiterAction::BroadcastActivate {
            addr, requester, ..
        }) = actions.iter().find_map(|a| match a {
            ArbiterAction::BroadcastActivate { .. } => Some(*a),
            _ => None,
        }) {
            served.push(requester);
            actions.clear();
            for n in 1..num_nodes {
                actions.extend(arb.ack(NodeId::new(n)));
            }
            assert!(activate_addr(&actions).is_none(), "no overlapping grants");
            actions.clear();
            actions.extend(arb.complete(addr, requester));
            assert_eq!(deactivate_addr(&actions), Some(addr));
            actions.clear();
            for n in 1..num_nodes {
                actions.extend(arb.ack(NodeId::new(n)));
            }
        }
        assert!(arb.is_idle());
        let expected: Vec<NodeId> = arrival_order.iter().map(|&n| NodeId::new(n)).collect();
        assert_eq!(served, expected, "service order must match arrival order");
    }

    /// Satellite fairness property: with every node re-requesting after
    /// each grant, no node is served twice before every other waiting node
    /// has been served once (the round-robin consequence of FIFO).
    #[test]
    fn no_node_is_served_twice_before_all_served_once() {
        let num_nodes = 4;
        let block = BlockAddr::new(9);
        let mut arb = PersistentArbiter::new(NodeId::new(0), num_nodes);
        let mut service_counts = vec![0u32; num_nodes];
        let mut actions = Vec::new();
        for n in 0..num_nodes {
            actions.extend(arb.request(block, NodeId::new(n), true));
        }
        for _round in 0..3 {
            for _grant in 0..num_nodes {
                let (addr, requester) = arb.active_requester().expect("a grant in flight");
                service_counts[requester.index()] += 1;
                let ceiling = *service_counts.iter().max().unwrap();
                let floor = *service_counts.iter().min().unwrap();
                assert!(
                    ceiling - floor <= 1,
                    "node {requester} served {ceiling} times while another node \
                     has only {floor}: {service_counts:?}"
                );
                actions.clear();
                for n in 1..num_nodes {
                    actions.extend(arb.ack(NodeId::new(n)));
                }
                actions.extend(arb.complete(addr, requester));
                // The served node immediately starves again.
                actions.extend(arb.request(block, requester, true));
                for n in 1..num_nodes {
                    actions.extend(arb.ack(NodeId::new(n)));
                }
            }
        }
        assert!(service_counts.iter().all(|&c| c == 3), "{service_counts:?}");
    }

    #[test]
    fn sabotaged_arbiter_drops_requests_silently() {
        let mut arb = PersistentArbiter::new(NodeId::new(0), 4);
        arb.set_sabotage(true);
        let actions = arb.request(BlockAddr::new(7), NodeId::new(2), true);
        assert!(actions.is_empty());
        assert!(arb.is_idle(), "nothing may be queued or in flight");
        assert_eq!(arb.activations(), 0);
        // Disabling sabotage restores normal service.
        arb.set_sabotage(false);
        let actions = arb.request(BlockAddr::new(7), NodeId::new(2), true);
        assert_eq!(activate_addr(&actions), Some(BlockAddr::new(7)));
    }

    #[test]
    fn sabotage_flag_survives_a_snapshot_round_trip() {
        let mut arb = PersistentArbiter::new(NodeId::new(0), 4);
        arb.set_sabotage(true);
        let mut w = SnapWriter::new();
        arb.save_state(&mut w);
        let bytes = w.into_bytes();
        let mut restored = PersistentArbiter::new(NodeId::new(0), 4);
        restored.load_state(&mut SnapReader::new(&bytes)).unwrap();
        assert!(restored
            .request(BlockAddr::new(1), NodeId::new(1), true)
            .is_empty());
    }

    #[test]
    fn fifo_order_is_preserved_across_many_requests() {
        let mut arb = PersistentArbiter::new(NodeId::new(0), 2);
        arb.request(BlockAddr::new(10), NodeId::new(1), true);
        for b in 11..15 {
            arb.request(BlockAddr::new(b), NodeId::new(1), false);
        }
        let mut served = vec![BlockAddr::new(10)];
        for b in 11..15 {
            // ack activation, then complete, then ack deactivation.
            arb.ack(NodeId::new(1));
            let current = served.last().copied().unwrap();
            arb.complete(current, NodeId::new(1));
            let actions = arb.ack(NodeId::new(1));
            if let Some(addr) = activate_addr(&actions) {
                served.push(addr);
                assert_eq!(addr, BlockAddr::new(b));
            }
        }
        assert_eq!(served.len(), 5);
    }
}
