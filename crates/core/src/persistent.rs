//! The per-node table of active persistent requests.

use tc_memsys::LineTable;
use tc_sim::{SnapReader, SnapWriter, SnapshotError};
use tc_types::{BlockAddr, NodeId};

/// One active persistent request, as remembered by every node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PersistentEntry {
    /// The starving node that must receive all tokens for the block.
    pub requester: NodeId,
    /// Whether the requester needs write permission (it is sent all tokens
    /// either way; the flag is kept for reporting).
    pub write: bool,
}

/// The hardware table each node keeps of activated persistent requests
/// (Section 3.2: an 8-byte entry per home-memory arbiter).
///
/// While an entry for a block is present, the node must forward every token
/// it holds for that block — and every token it receives later — to the
/// entry's requester, until the arbiter broadcasts a deactivation. Entries
/// live on the shared [`LineTable`] plane: the table is probed on every
/// token receipt and every transient-request snoop, and nothing depends on
/// iteration order.
#[derive(Debug, Clone, Default)]
pub struct PersistentTable {
    entries: LineTable<PersistentEntry>,
    activations_seen: u64,
}

impl PersistentTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        PersistentTable::default()
    }

    /// Records an activation broadcast by an arbiter.
    pub fn activate(&mut self, addr: BlockAddr, requester: NodeId, write: bool) {
        self.activations_seen += 1;
        self.entries
            .insert(addr, PersistentEntry { requester, write });
    }

    /// Removes the entry for `addr` (a deactivation broadcast). Returns the
    /// entry that was active, if any.
    pub fn deactivate(&mut self, addr: BlockAddr) -> Option<PersistentEntry> {
        self.entries.remove(addr)
    }

    /// The active persistent request for `addr`, if any.
    pub fn active(&self, addr: BlockAddr) -> Option<PersistentEntry> {
        self.entries.get(addr).copied()
    }

    /// Returns the requester that tokens for `addr` must be forwarded to, if
    /// it is some node other than `me`.
    pub fn forward_target(&self, addr: BlockAddr, me: NodeId) -> Option<NodeId> {
        match self.entries.get(addr) {
            Some(entry) if entry.requester != me => Some(entry.requester),
            _ => None,
        }
    }

    /// Number of entries currently active.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if no persistent requests are active.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total number of activations this node has observed.
    pub fn activations_seen(&self) -> u64 {
        self.activations_seen
    }

    /// Peak number of simultaneously active entries.
    pub fn high_water(&self) -> usize {
        self.entries.high_water()
    }

    /// Bytes allocated by the backing line table.
    pub fn state_bytes(&self) -> u64 {
        self.entries.allocated_bytes()
    }

    /// The retired-`BTreeMap` cost estimate for the same peak population.
    pub fn retired_bytes_estimate(&self) -> u64 {
        self.entries.retired_container_bytes_estimate()
    }

    /// Serializes the table's entries and activation counter.
    pub fn save_state(&self, w: &mut SnapWriter) {
        w.u64(self.activations_seen);
        self.entries.save_state(w, |w, e| {
            w.u32(e.requester.index() as u32);
            w.bool(e.write);
        });
    }

    /// Restores [`PersistentTable::save_state`] bytes.
    pub fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapshotError> {
        self.activations_seen = r.u64()?;
        self.entries = LineTable::load_state(r, |r| {
            Ok(PersistentEntry {
                requester: NodeId::new(r.u32()? as usize),
                write: r.bool()?,
            })
        })?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn activate_then_deactivate_round_trips() {
        let mut table = PersistentTable::new();
        assert!(table.is_empty());
        table.activate(BlockAddr::new(5), NodeId::new(2), true);
        assert_eq!(table.len(), 1);
        assert_eq!(
            table.active(BlockAddr::new(5)),
            Some(PersistentEntry {
                requester: NodeId::new(2),
                write: true
            })
        );
        let removed = table.deactivate(BlockAddr::new(5)).unwrap();
        assert_eq!(removed.requester, NodeId::new(2));
        assert!(table.active(BlockAddr::new(5)).is_none());
    }

    #[test]
    fn forward_target_excludes_the_requester_itself() {
        let mut table = PersistentTable::new();
        table.activate(BlockAddr::new(9), NodeId::new(3), false);
        assert_eq!(
            table.forward_target(BlockAddr::new(9), NodeId::new(1)),
            Some(NodeId::new(3))
        );
        assert_eq!(
            table.forward_target(BlockAddr::new(9), NodeId::new(3)),
            None
        );
        assert_eq!(
            table.forward_target(BlockAddr::new(10), NodeId::new(1)),
            None
        );
    }

    #[test]
    fn one_entry_per_block_with_replacement() {
        let mut table = PersistentTable::new();
        table.activate(BlockAddr::new(1), NodeId::new(0), false);
        table.activate(BlockAddr::new(1), NodeId::new(4), true);
        assert_eq!(table.len(), 1);
        assert_eq!(
            table.active(BlockAddr::new(1)).unwrap().requester,
            NodeId::new(4)
        );
        assert_eq!(table.activations_seen(), 2);
    }

    #[test]
    fn deactivating_missing_entry_is_harmless() {
        let mut table = PersistentTable::new();
        assert!(table.deactivate(BlockAddr::new(77)).is_none());
    }
}
