//! Reissue-timeout policy: average-miss-latency tracking and randomized
//! exponential backoff.

use tc_sim::DeterministicRng;
use tc_types::Cycle;

/// Tracks the recent average miss latency with an exponential moving average
/// and derives the TokenB reissue and persistent-request timeouts from it.
///
/// The paper's policy (Section 4.2): reissue a transient request after twice
/// the recent average miss latency plus a small randomized exponential
/// backoff, and invoke a persistent request when a miss has gone unsatisfied
/// for roughly ten average miss times (approximately four reissues).
#[derive(Debug, Clone)]
pub struct MissLatencyTracker {
    average: f64,
    samples: u64,
    reissue_multiplier: f64,
    backoff_fraction: f64,
}

impl MissLatencyTracker {
    /// Initial average used before any misses have completed, chosen as a
    /// generous estimate of a cache-to-cache miss on the torus (a few link
    /// crossings plus controller occupancy).
    pub const INITIAL_AVERAGE_NS: f64 = 200.0;

    /// Creates a tracker using the given reissue multiplier (the paper
    /// uses 2.0).
    pub fn new(reissue_multiplier: f64) -> Self {
        MissLatencyTracker {
            average: Self::INITIAL_AVERAGE_NS,
            samples: 0,
            reissue_multiplier: reissue_multiplier.max(1.0),
            backoff_fraction: 0.25,
        }
    }

    /// Records a completed miss latency.
    pub fn record(&mut self, latency: Cycle) {
        self.samples += 1;
        let sample = latency as f64;
        if self.samples == 1 {
            self.average = sample;
        } else {
            // Exponential moving average weighted toward recent behaviour.
            self.average = 0.9 * self.average + 0.1 * sample;
        }
    }

    /// The current average miss latency estimate, in nanoseconds.
    pub fn average(&self) -> f64 {
        self.average
    }

    /// Number of samples recorded.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// The timeout to arm for the `issue_count`-th issue of a transient
    /// request (1 = the first issue). Later issues back off exponentially,
    /// with a small random jitter so that two racing processors do not
    /// reissue in lock step (the "much like ethernet" behaviour).
    pub fn reissue_timeout(&self, issue_count: u32, rng: &mut DeterministicRng) -> Cycle {
        let base = self.reissue_multiplier * self.average;
        let exponent = issue_count.saturating_sub(1).min(8);
        let window = (self.average * self.backoff_fraction) * f64::from(1u32 << exponent);
        let jitter = if window >= 1.0 {
            rng.next_below(window as u64 + 1)
        } else {
            0
        };
        (base as Cycle).max(1) + jitter
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_sample_replaces_the_initial_guess() {
        let mut t = MissLatencyTracker::new(2.0);
        assert!((t.average() - MissLatencyTracker::INITIAL_AVERAGE_NS).abs() < 1e-9);
        t.record(100);
        assert!((t.average() - 100.0).abs() < 1e-9);
        assert_eq!(t.samples(), 1);
    }

    #[test]
    fn average_tracks_recent_latencies() {
        let mut t = MissLatencyTracker::new(2.0);
        for _ in 0..100 {
            t.record(50);
        }
        assert!((t.average() - 50.0).abs() < 1.0);
        for _ in 0..100 {
            t.record(500);
        }
        assert!(t.average() > 400.0, "average should chase recent samples");
    }

    #[test]
    fn timeout_is_at_least_twice_the_average() {
        let mut t = MissLatencyTracker::new(2.0);
        for _ in 0..10 {
            t.record(80);
        }
        let mut rng = DeterministicRng::new(1);
        for issue in 1..5 {
            let timeout = t.reissue_timeout(issue, &mut rng);
            assert!(timeout >= (2.0 * t.average()) as Cycle);
        }
    }

    #[test]
    fn backoff_window_grows_with_reissues() {
        let mut t = MissLatencyTracker::new(2.0);
        for _ in 0..10 {
            t.record(100);
        }
        let max_over = |issue: u32| {
            let mut rng = DeterministicRng::new(3);
            (0..200)
                .map(|_| t.reissue_timeout(issue, &mut rng))
                .max()
                .unwrap()
        };
        assert!(
            max_over(4) > max_over(1),
            "later issues should back off more"
        );
    }

    #[test]
    fn timeout_is_randomized() {
        let t = MissLatencyTracker::new(2.0);
        let mut rng = DeterministicRng::new(9);
        let values: std::collections::HashSet<_> =
            (0..50).map(|_| t.reissue_timeout(2, &mut rng)).collect();
        assert!(values.len() > 1, "timeouts should not be constant");
    }

    #[test]
    fn degenerate_multiplier_is_clamped() {
        let t = MissLatencyTracker::new(0.0);
        let mut rng = DeterministicRng::new(4);
        assert!(t.reissue_timeout(1, &mut rng) >= MissLatencyTracker::INITIAL_AVERAGE_NS as Cycle);
    }
}
