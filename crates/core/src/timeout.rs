//! Reissue-timeout policy: average-miss-latency tracking and randomized
//! exponential backoff.

use tc_sim::{DeterministicRng, SnapReader, SnapWriter, SnapshotError};
use tc_types::Cycle;

/// Tracks the recent average miss latency with an exponential moving average
/// and derives the TokenB reissue and persistent-request timeouts from it.
///
/// The paper's policy (Section 4.2): reissue a transient request after twice
/// the recent average miss latency plus a small randomized exponential
/// backoff, and invoke a persistent request when a miss has gone unsatisfied
/// for roughly ten average miss times (approximately four reissues).
#[derive(Debug, Clone)]
pub struct MissLatencyTracker {
    average: f64,
    samples: u64,
    reissue_multiplier: f64,
    backoff_fraction: f64,
}

impl MissLatencyTracker {
    /// Initial average used before any misses have completed, chosen as a
    /// generous estimate of a cache-to-cache miss on the torus (a few link
    /// crossings plus controller occupancy).
    pub const INITIAL_AVERAGE_NS: f64 = 200.0;

    /// Creates a tracker using the given reissue multiplier (the paper
    /// uses 2.0).
    pub fn new(reissue_multiplier: f64) -> Self {
        MissLatencyTracker {
            average: Self::INITIAL_AVERAGE_NS,
            samples: 0,
            reissue_multiplier: reissue_multiplier.max(1.0),
            backoff_fraction: 0.25,
        }
    }

    /// Records a completed miss latency.
    pub fn record(&mut self, latency: Cycle) {
        self.samples += 1;
        let sample = latency as f64;
        if self.samples == 1 {
            self.average = sample;
        } else {
            // Exponential moving average weighted toward recent behaviour.
            self.average = 0.9 * self.average + 0.1 * sample;
        }
    }

    /// The current average miss latency estimate, in nanoseconds.
    pub fn average(&self) -> f64 {
        self.average
    }

    /// Number of samples recorded.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Serializes the moving average and sample count (multiplier and
    /// backoff fraction are config-derived).
    pub fn save_state(&self, w: &mut SnapWriter) {
        w.f64(self.average);
        w.u64(self.samples);
    }

    /// Restores [`MissLatencyTracker::save_state`] bytes onto a same-config
    /// tracker.
    pub fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapshotError> {
        self.average = r.f64()?;
        self.samples = r.u64()?;
        Ok(())
    }

    /// The timeout to arm for the `issue_count`-th issue of a transient
    /// request (1 = the first issue). Later issues back off exponentially,
    /// with a small random jitter so that two racing processors do not
    /// reissue in lock step (the "much like ethernet" behaviour).
    pub fn reissue_timeout(&self, issue_count: u32, rng: &mut DeterministicRng) -> Cycle {
        let base = self.reissue_multiplier * self.average;
        let exponent = issue_count.saturating_sub(1).min(8);
        let window = (self.average * self.backoff_fraction) * f64::from(1u32 << exponent);
        let jitter = if window >= 1.0 {
            rng.next_below(window as u64 + 1)
        } else {
            0
        };
        (base as Cycle).max(1) + jitter
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_sample_replaces_the_initial_guess() {
        let mut t = MissLatencyTracker::new(2.0);
        assert!((t.average() - MissLatencyTracker::INITIAL_AVERAGE_NS).abs() < 1e-9);
        t.record(100);
        assert!((t.average() - 100.0).abs() < 1e-9);
        assert_eq!(t.samples(), 1);
    }

    #[test]
    fn average_tracks_recent_latencies() {
        let mut t = MissLatencyTracker::new(2.0);
        for _ in 0..100 {
            t.record(50);
        }
        assert!((t.average() - 50.0).abs() < 1.0);
        for _ in 0..100 {
            t.record(500);
        }
        assert!(t.average() > 400.0, "average should chase recent samples");
    }

    #[test]
    fn timeout_is_at_least_twice_the_average() {
        let mut t = MissLatencyTracker::new(2.0);
        for _ in 0..10 {
            t.record(80);
        }
        let mut rng = DeterministicRng::new(1);
        for issue in 1..5 {
            let timeout = t.reissue_timeout(issue, &mut rng);
            assert!(timeout >= (2.0 * t.average()) as Cycle);
        }
    }

    #[test]
    fn backoff_window_grows_with_reissues() {
        let mut t = MissLatencyTracker::new(2.0);
        for _ in 0..10 {
            t.record(100);
        }
        let max_over = |issue: u32| {
            let mut rng = DeterministicRng::new(3);
            (0..200)
                .map(|_| t.reissue_timeout(issue, &mut rng))
                .max()
                .unwrap()
        };
        assert!(
            max_over(4) > max_over(1),
            "later issues should back off more"
        );
    }

    #[test]
    fn timeout_is_randomized() {
        let t = MissLatencyTracker::new(2.0);
        let mut rng = DeterministicRng::new(9);
        let values: std::collections::HashSet<_> =
            (0..50).map(|_| t.reissue_timeout(2, &mut rng)).collect();
        assert!(values.len() > 1, "timeouts should not be constant");
    }

    #[test]
    fn degenerate_multiplier_is_clamped() {
        let t = MissLatencyTracker::new(0.0);
        let mut rng = DeterministicRng::new(4);
        assert!(t.reissue_timeout(1, &mut rng) >= MissLatencyTracker::INITIAL_AVERAGE_NS as Cycle);
    }

    #[test]
    fn backoff_exponent_saturates_for_absurd_issue_counts() {
        // A request that has been reissued thousands of times (deep
        // starvation) must not overflow the backoff window computation; the
        // exponent is capped, so the timeout stays finite and the cap equals
        // the value at the cap boundary.
        let mut t = MissLatencyTracker::new(2.0);
        for _ in 0..10 {
            t.record(100);
        }
        let max_at = |issue: u32| {
            let mut rng = DeterministicRng::new(5);
            (0..100)
                .map(|_| t.reissue_timeout(issue, &mut rng))
                .max()
                .unwrap()
        };
        let capped = max_at(9); // exponent cap (8) reached at the 9th issue
        assert_eq!(max_at(u32::MAX), capped);
        assert!(capped < 1_000_000, "backoff must stay bounded");
    }

    /// The starvation-boundary race: the reissue timeout fires in the same
    /// cycle the tokens arrive. Whichever event the queue happens to deliver
    /// first, the miss must complete exactly once, the stale timer (or the
    /// stale reissue the timer broadcast) must be inert, and every token
    /// must be accounted for afterwards.
    mod starvation_boundary {
        use crate::TokenBController;
        use tc_types::{
            Address, BlockAddr, CoherenceController, MemOp, MemOpKind, Message, Outbox,
            ProtocolKind, ReqId, SystemConfig, Timer, TimerKind,
        };

        fn config() -> SystemConfig {
            SystemConfig::isca03_default()
                .with_nodes(4)
                .with_protocol(ProtocolKind::TokenB)
        }

        /// Issues a store miss at node 1 and routes it through the home
        /// (node 0), returning the requester, the armed reissue timer, its
        /// firing time, and the home's token response (held, not delivered).
        fn setup() -> (TokenBController, u64, Timer, Message, TokenBController) {
            let config = config();
            let mut requester = TokenBController::new(1.into(), &config);
            let mut home = TokenBController::new(0.into(), &config);
            let mut out = Outbox::new();
            requester.access(
                0,
                &MemOp::new(ReqId::new(1), Address::new(0), MemOpKind::Store),
                &mut out,
            );
            let (fire_at, reissue) = out
                .timers
                .iter()
                .find(|(_, t)| t.kind == TimerKind::Reissue)
                .copied()
                .expect("reissue timer armed");
            let getm = out.messages[0].clone();
            let mut home_out = Outbox::new();
            home.handle_message(40, &getm, &mut home_out);
            let data = home_out
                .messages
                .iter()
                .find(|m| m.kind.token_count() > 0)
                .cloned()
                .expect("home supplies tokens");
            (requester, fire_at, reissue, data, home)
        }

        fn total_tokens(requester: &TokenBController, home: &TokenBController) -> u32 {
            let block = BlockAddr::new(0);
            requester
                .audit_block(block)
                .iter()
                .chain(home.audit_block(block).iter())
                .map(|a| a.tokens)
                .sum()
        }

        #[test]
        fn tokens_arriving_before_the_same_cycle_timeout_win() {
            let (mut requester, fire_at, reissue, data, home) = setup();
            let mut out = Outbox::new();
            requester.handle_message(fire_at, &data, &mut out);
            assert_eq!(out.completions.len(), 1, "miss completes on the data");
            // The timeout fires in the very same cycle, after the tokens
            // landed: it must not reissue, re-arm, or double-complete.
            let mut stale = Outbox::new();
            requester.handle_timer(fire_at, reissue, &mut stale);
            assert!(stale.messages.is_empty(), "stale timeout must be inert");
            assert!(stale.completions.is_empty());
            assert!(stale.timers.is_empty());
            assert_eq!(requester.tokens_held(BlockAddr::new(0)), 16);
            assert_eq!(total_tokens(&requester, &home), 16);
        }

        /// The duplicate-delivery fault the fault plane injects: transient
        /// requests are the one message class TokenB lets the fabric
        /// duplicate, so the home may see the *same* GetM twice. It must
        /// supply its tokens exactly once — answering the copy with tokens
        /// would mint them — and the requester still completes exactly once.
        #[test]
        fn duplicated_transient_request_supplies_tokens_exactly_once() {
            let config = config();
            let mut requester = TokenBController::new(1.into(), &config);
            let mut home = TokenBController::new(0.into(), &config);
            let mut out = Outbox::new();
            requester.access(
                0,
                &MemOp::new(ReqId::new(1), Address::new(0), MemOpKind::Store),
                &mut out,
            );
            let getm = out.messages[0].clone();

            // Original delivery: the home gives up all its tokens.
            let mut first = Outbox::new();
            home.handle_message(40, &getm, &mut first);
            let data = first
                .messages
                .iter()
                .find(|m| m.kind.token_count() > 0)
                .cloned()
                .expect("home supplies tokens");

            // The fabric's duplicate lands a few cycles later: bit-identical
            // message, same request id, not even flagged as a reissue. The
            // home has nothing left and must not conjure tokens.
            let mut dup = Outbox::new();
            home.handle_message(43, &getm, &mut dup);
            let mut follow_up = Outbox::new();
            for (at, timer) in dup.timers.clone() {
                home.handle_timer(at, timer, &mut follow_up);
            }
            let minted: u32 = dup
                .messages
                .iter()
                .chain(follow_up.messages.iter())
                .map(|m| m.kind.token_count())
                .sum();
            assert_eq!(minted, 0, "duplicate GetM must not mint tokens");

            // The single real response completes the miss exactly once and
            // conservation holds across both controllers.
            let mut done = Outbox::new();
            requester.handle_message(80, &data, &mut done);
            assert_eq!(done.completions.len(), 1);
            assert_eq!(requester.tokens_held(BlockAddr::new(0)), 16);
            assert_eq!(total_tokens(&requester, &home), 16);
        }

        /// Injected delay pushes the original response past the reissue
        /// timeout entirely: the timer fires first (reissue goes out), the
        /// data arrives hundreds of cycles later, and then the reissued
        /// request's own response path plays out. The miss must complete
        /// exactly once, no stale timer or stale response may mint tokens,
        /// and the follow-up timeout armed by the reissue must be inert.
        #[test]
        fn delayed_response_arriving_after_the_timeout_completes_exactly_once() {
            let (mut requester, fire_at, reissue, data, mut home) = setup();
            // The timer fires with the data still in flight (delay fault).
            let mut reissued = Outbox::new();
            requester.handle_timer(fire_at, reissue, &mut reissued);
            assert!(reissued.messages.iter().any(|m| m.reissue));

            // The delayed original lands long after the timeout: exactly one
            // completion, full token count.
            let late = fire_at + 500;
            let mut out = Outbox::new();
            requester.handle_message(late, &data, &mut out);
            assert_eq!(out.completions.len(), 1, "late data still completes");
            assert_eq!(requester.tokens_held(BlockAddr::new(0)), 16);

            // The reissue (also delayed) reaches the token-less home after
            // the miss already completed: no tokens may flow back.
            let mut home_out = Outbox::new();
            for msg in &reissued.messages {
                if msg.dest.includes(0.into(), msg.src) {
                    home.handle_message(late + 40, msg, &mut home_out);
                }
            }
            let mut supplied = Outbox::new();
            for (at, timer) in home_out.timers.clone() {
                home.handle_timer(at, timer, &mut supplied);
            }
            let stray: u32 = home_out
                .messages
                .iter()
                .chain(supplied.messages.iter())
                .map(|m| m.kind.token_count())
                .sum();
            assert_eq!(stray, 0, "stale reissue answered with tokens");
            assert_eq!(total_tokens(&requester, &home), 16);

            // The reissue re-armed a timeout; with the miss complete it must
            // neither reissue again nor re-arm.
            let (later, follow_up) = reissued
                .timers
                .iter()
                .find(|(_, t)| t.kind == TimerKind::Reissue)
                .copied()
                .expect("reissue re-arms its timeout");
            let mut stale = Outbox::new();
            requester.handle_timer(later.max(late) + 1, follow_up, &mut stale);
            assert!(stale.messages.is_empty(), "stale follow-up must be inert");
            assert!(stale.timers.is_empty());
            assert!(stale.completions.is_empty());
        }

        #[test]
        fn timeout_firing_before_the_same_cycle_tokens_is_absorbed() {
            let (mut requester, fire_at, reissue, data, mut home) = setup();
            // The timer wins the queue race: a reissue goes out.
            let mut reissued = Outbox::new();
            requester.handle_timer(fire_at, reissue, &mut reissued);
            assert!(
                reissued.messages.iter().any(|m| m.reissue),
                "boundary timeout reissues the transient request"
            );
            // The tokens land in the same cycle: exactly one completion.
            let mut out = Outbox::new();
            requester.handle_message(fire_at, &data, &mut out);
            assert_eq!(out.completions.len(), 1);
            assert_eq!(requester.tokens_held(BlockAddr::new(0)), 16);

            // The stale reissue reaches the home, which has no tokens left;
            // its response path must not conjure tokens from nowhere.
            let mut home_out = Outbox::new();
            for msg in &reissued.messages {
                if msg.dest.includes(0.into(), msg.src) {
                    home.handle_message(fire_at + 40, msg, &mut home_out);
                }
            }
            let mut supplied = Outbox::new();
            for (at, timer) in home_out.timers.clone() {
                home.handle_timer(at, timer, &mut supplied);
            }
            let stray_tokens: u32 = home_out
                .messages
                .iter()
                .chain(supplied.messages.iter())
                .map(|m| m.kind.token_count())
                .sum();
            assert_eq!(
                stray_tokens, 0,
                "home must not answer a stale reissue with tokens"
            );
            assert_eq!(total_tokens(&requester, &home), 16);

            // The reissue armed a follow-up timer; once the miss is complete
            // it too must be inert.
            let (later, follow_up) = reissued
                .timers
                .iter()
                .find(|(_, t)| t.kind == TimerKind::Reissue)
                .copied()
                .expect("reissue re-arms its timeout");
            let mut stale = Outbox::new();
            requester.handle_timer(later, follow_up, &mut stale);
            assert!(stale.messages.is_empty() && stale.timers.is_empty());
        }
    }
}
