//! Per-block token state held in caches and at the home memory.

/// Token state of one cache line.
///
/// Possession of tokens maps directly onto the familiar MOESI states
/// (Section 3.1 of the paper): all `T` tokens is M (or E when clean), the
/// owner token plus some non-owner tokens is O, one or more non-owner tokens
/// is S, and no tokens is I. The *valid-data* bit is distinct from the tag
/// valid bit: with the optimized invariants a component may hold non-owner
/// tokens without data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TokenLine {
    /// Number of tokens held (including the owner token if `owner`).
    pub tokens: u32,
    /// Whether the owner token is among them.
    pub owner: bool,
    /// Whether the line holds valid data (invariant #3' requires this to
    /// read).
    pub valid_data: bool,
    /// Whether the data differs from the memory copy (needs writeback with
    /// the owner token).
    pub dirty: bool,
    /// Simulated block contents (version number).
    pub version: u64,
}

impl TokenLine {
    /// A line with no tokens and no data.
    pub fn empty() -> Self {
        TokenLine::default()
    }

    /// Invariant #3': the processor may read only with at least one token and
    /// valid data.
    pub fn readable(&self) -> bool {
        self.tokens >= 1 && self.valid_data
    }

    /// Invariant #2': the processor may write only while holding all `total`
    /// tokens (and it must have valid data to produce the new block value).
    pub fn writable(&self, total: u32) -> bool {
        self.tokens == total && self.valid_data
    }

    /// Returns `true` if the line holds nothing worth keeping.
    pub fn is_invalid(&self) -> bool {
        self.tokens == 0
    }

    /// The MOESI state name this token count corresponds to, for traces and
    /// tests.
    pub fn moesi_name(&self, total: u32) -> &'static str {
        if self.tokens == 0 {
            "I"
        } else if self.tokens == total {
            if self.dirty {
                "M"
            } else {
                "E"
            }
        } else if self.owner {
            "O"
        } else {
            "S"
        }
    }
}

/// Token state of the home memory for one block.
///
/// Memory starts out holding all `T` tokens (including the owner token) for
/// every block it homes; because that initial state is implicit, the struct
/// records whether it has been materialized yet (`initialized`). The home
/// controller materializes it the first time the block is touched.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MemTokens {
    /// Whether the implicit "all tokens at home" state has been materialized.
    pub initialized: bool,
    /// Tokens currently held by memory.
    pub tokens: u32,
    /// Whether memory holds the owner token.
    pub owner: bool,
}

impl MemTokens {
    /// Materializes the initial state (all `total` tokens at home) if this
    /// entry has never been touched.
    pub fn ensure_initialized(&mut self, total: u32) {
        if !self.initialized {
            self.initialized = true;
            self.tokens = total;
            self.owner = true;
        }
    }

    /// Returns `true` if memory can source data for a read request: it must
    /// hold the owner token (whose presence guarantees the memory copy is
    /// current).
    pub fn can_supply_data(&self) -> bool {
        self.owner && self.tokens > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_line_is_invalid_and_unreadable() {
        let line = TokenLine::empty();
        assert!(line.is_invalid());
        assert!(!line.readable());
        assert!(!line.writable(16));
        assert_eq!(line.moesi_name(16), "I");
    }

    #[test]
    fn token_counts_map_to_moesi_states() {
        let total = 16;
        let mut line = TokenLine {
            tokens: total,
            owner: true,
            valid_data: true,
            dirty: true,
            version: 1,
        };
        assert_eq!(line.moesi_name(total), "M");
        line.dirty = false;
        assert_eq!(line.moesi_name(total), "E");
        line.tokens = 5;
        assert_eq!(line.moesi_name(total), "O");
        line.owner = false;
        assert_eq!(line.moesi_name(total), "S");
        line.tokens = 0;
        assert_eq!(line.moesi_name(total), "I");
    }

    #[test]
    fn read_needs_token_and_valid_data() {
        let mut line = TokenLine {
            tokens: 1,
            owner: false,
            valid_data: false,
            dirty: false,
            version: 0,
        };
        assert!(!line.readable(), "token without data is not readable");
        line.valid_data = true;
        assert!(line.readable());
    }

    #[test]
    fn write_needs_every_token() {
        let total = 4;
        for tokens in 0..total {
            let line = TokenLine {
                tokens,
                owner: tokens > 0,
                valid_data: true,
                dirty: false,
                version: 0,
            };
            assert!(
                !line.writable(total),
                "{tokens} tokens must not be writable"
            );
        }
        let line = TokenLine {
            tokens: total,
            owner: true,
            valid_data: true,
            dirty: false,
            version: 0,
        };
        assert!(line.writable(total));
    }

    #[test]
    fn memory_initializes_to_all_tokens_once() {
        let mut mem = MemTokens::default();
        assert!(!mem.initialized);
        mem.ensure_initialized(16);
        assert_eq!(mem.tokens, 16);
        assert!(mem.owner);
        mem.tokens = 3;
        mem.owner = false;
        mem.ensure_initialized(16);
        assert_eq!(mem.tokens, 3, "re-initialization must not mint tokens");
        assert!(!mem.owner);
    }

    #[test]
    fn memory_supplies_data_only_with_owner_token() {
        let mut mem = MemTokens::default();
        mem.ensure_initialized(8);
        assert!(mem.can_supply_data());
        mem.owner = false;
        assert!(!mem.can_supply_data());
        mem.owner = true;
        mem.tokens = 0;
        assert!(!mem.can_supply_data());
    }
}
