//! TokenB: the broadcast performance protocol on top of the token-counting
//! correctness substrate.

use std::collections::BTreeSet;

use tc_memsys::{hinted_get, HomeMemory, L1Filter, MshrTable, OpList, OpSlab, SetAssocCache};
use tc_sim::{DeterministicRng, SnapReader, SnapWriter, SnapshotError};
use tc_types::{
    AccessOutcome, BlockAddr, BlockAudit, CoherenceController, ControllerStats, Cycle, DataPayload,
    Destination, HomeMap, LineStateStats, MemOp, Message, MissCompletion, MissKind, MsgKind,
    NodeId, Outbox, ReqId, SystemConfig, Timer, TimerKind, Vnet,
};

use crate::arbiter::{ArbiterAction, PersistentArbiter};
use crate::persistent::PersistentTable;
use crate::state::{MemTokens, TokenLine};
use crate::timeout::MissLatencyTracker;

/// One pending processor operation merged into an outstanding miss.
#[derive(Debug, Clone, Copy)]
struct PendingOp {
    req_id: ReqId,
    write: bool,
}

/// Bookkeeping for one outstanding TokenB miss. The pending-op list lives
/// in the controller's [`OpSlab`] pool.
#[derive(Debug)]
struct TokenMshr {
    pending: OpList,
    /// Whether the miss needs all tokens (any pending store).
    write: bool,
    /// Whether the processor already held a readable copy (upgrade miss).
    upgrade: bool,
    issued_at: Cycle,
    /// Number of times the transient request has been issued (1 = first).
    issue_count: u32,
    /// Whether the miss has escalated to a persistent request.
    persistent: bool,
    /// Sequence number of the currently armed reissue timer, to ignore stale
    /// timers after a reissue or completion.
    timer_seq: u64,
    /// Whether any data that arrived came from another cache.
    data_from_cache: bool,
    /// Whether any data arrived from memory.
    data_from_memory: bool,
}

/// The TokenB coherence controller for one node.
///
/// The controller plays three roles, because the target system integrates
/// them on one chip:
///
/// * the **cache controller** for the node's L1/L2 hierarchy, issuing
///   broadcast transient requests on misses, reissuing them on timeout, and
///   escalating to persistent requests when starving;
/// * the **home memory controller** for the slice of physical memory homed at
///   this node, holding memory's tokens and responding to requests; and
/// * the **persistent-request arbiter** for blocks homed at this node.
#[derive(Debug)]
pub struct TokenBController {
    node: NodeId,
    home_map: HomeMap,
    total_tokens: u32,
    l1: L1Filter,
    l2: SetAssocCache<TokenLine>,
    l2_latency: Cycle,
    controller_latency: Cycle,
    dram_latency: Cycle,
    memory: HomeMemory<MemTokens>,
    mshrs: MshrTable<TokenMshr>,
    persistent_table: PersistentTable,
    arbiter: PersistentArbiter,
    latency: MissLatencyTracker,
    rng: DeterministicRng,
    stats: ControllerStats,
    reissues_before_persistent: u32,
    migratory_optimization: bool,
    store_counter: u64,
    timer_seq: u64,
    /// Pooled storage for every MSHR entry's pending-op list.
    pending_ops: OpSlab<PendingOp>,
}

impl TokenBController {
    /// Creates the TokenB controller for `node` under `config`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration has fewer tokens per block than nodes
    /// (call [`SystemConfig::validate`] first to get an error instead).
    pub fn new(node: NodeId, config: &SystemConfig) -> Self {
        assert!(
            config.token.tokens_per_block as usize >= config.num_nodes,
            "tokens per block must be at least the number of nodes"
        );
        let home_map = HomeMap::new(config.num_nodes, config.block_bytes);
        let mut seed_rng = DeterministicRng::new(config.seed ^ 0x70_6b_65_6e);
        TokenBController {
            node,
            home_map,
            total_tokens: config.token.tokens_per_block,
            l1: L1Filter::new(&config.l1, config.block_bytes),
            l2: SetAssocCache::new(&config.l2, config.block_bytes),
            l2_latency: config.l2.latency_ns,
            controller_latency: config.controller_latency_ns,
            dram_latency: config.dram_latency_ns,
            memory: HomeMemory::new(node, home_map, config.dram_latency_ns),
            mshrs: MshrTable::new(config.processor.max_outstanding_misses.max(1)),
            persistent_table: PersistentTable::new(),
            arbiter: PersistentArbiter::new(node, config.num_nodes),
            latency: MissLatencyTracker::new(config.token.reissue_latency_multiplier),
            rng: seed_rng.fork(node.index() as u64 + 17),
            stats: ControllerStats::new(),
            reissues_before_persistent: config.token.reissues_before_persistent,
            migratory_optimization: config.token.migratory_optimization,
            store_counter: 0,
            timer_seq: 0,
            pending_ops: OpSlab::new(),
        }
    }

    /// Total tokens per block, `T`.
    pub fn total_tokens(&self) -> u32 {
        self.total_tokens
    }

    /// The MOESI-equivalent state of a block in this node's cache (for tests
    /// and traces).
    pub fn cache_state_name(&self, addr: BlockAddr) -> &'static str {
        self.l2
            .peek(addr)
            .map(|l| l.moesi_name(self.total_tokens))
            .unwrap_or("I")
    }

    /// Tokens currently held for `addr` by this node (cache plus memory).
    pub fn tokens_held(&self, addr: BlockAddr) -> u32 {
        let cache = self.l2.peek(addr).map(|l| l.tokens).unwrap_or(0);
        let memory = self
            .memory
            .state(addr)
            .map(|m| if m.initialized { m.tokens } else { 0 })
            .unwrap_or(0);
        cache + memory
    }

    fn is_home(&self, addr: BlockAddr) -> bool {
        self.home_map.is_home(self.node, addr)
    }

    fn home_of(&self, addr: BlockAddr) -> NodeId {
        self.home_map.home_of(addr)
    }

    fn send(&mut self, out: &mut Outbox, msg: Message) {
        self.stats.messages_sent += 1;
        out.send(msg);
    }

    // ------------------------------------------------------------------
    // Message construction helpers.
    // ------------------------------------------------------------------

    #[allow(clippy::too_many_arguments)]
    fn token_message(
        &self,
        at: Cycle,
        dest: NodeId,
        addr: BlockAddr,
        tokens: u32,
        owner: bool,
        dirty: bool,
        from_memory: bool,
        version: u64,
        vnet: Vnet,
    ) -> Message {
        debug_assert!(tokens > 0, "token messages must carry at least one token");
        let kind = if owner {
            // Invariant #4': the owner token always travels with data.
            MsgKind::TokenData {
                tokens,
                owner: true,
                dirty,
                from_memory,
                payload: DataPayload::new(version),
            }
        } else if dirty || vnet == Vnet::Response && from_memory {
            // Non-owner tokens may travel without data; we send data anyway
            // only when it is required (never, in this implementation) —
            // keep them dataless to model the bandwidth optimization.
            MsgKind::TokenOnly { tokens }
        } else {
            MsgKind::TokenOnly { tokens }
        };
        Message::new(self.node, Destination::Node(dest), addr, kind, vnet, at)
    }

    /// A data response that carries tokens and data even without the owner
    /// token (used when the responder wants the requester to be able to read
    /// immediately, e.g. an owner sharing one token plus data).
    #[allow(clippy::too_many_arguments)]
    fn data_response(
        &self,
        at: Cycle,
        dest: NodeId,
        addr: BlockAddr,
        tokens: u32,
        owner: bool,
        dirty: bool,
        from_memory: bool,
        version: u64,
    ) -> Message {
        Message::new(
            self.node,
            Destination::Node(dest),
            addr,
            MsgKind::TokenData {
                tokens,
                owner,
                dirty,
                from_memory,
                payload: DataPayload::new(version),
            },
            Vnet::Response,
            at,
        )
    }

    // ------------------------------------------------------------------
    // Cache/eviction helpers.
    // ------------------------------------------------------------------

    /// Ensures a cache line exists for `addr`, evicting a victim if needed.
    /// Victim tokens (and data, with the owner token) are sent home.
    fn allocate_line(&mut self, now: Cycle, addr: BlockAddr, out: &mut Outbox) {
        if self.l2.contains(addr) {
            return;
        }
        if let Some(victim) = self.l2.insert(addr, TokenLine::empty()) {
            self.evict_line(now, victim.addr, victim.state, out);
        }
    }

    fn evict_line(&mut self, now: Cycle, addr: BlockAddr, line: TokenLine, out: &mut Outbox) {
        self.l1.invalidate(addr);
        if line.tokens == 0 {
            return;
        }
        self.stats.misses.writebacks += 1;
        let home = self.home_of(addr);
        let at = now + self.controller_latency;
        // If a persistent request is active for this block, the tokens go to
        // the starving requester instead of home.
        let dest = self
            .persistent_table
            .forward_target(addr, self.node)
            .unwrap_or(home);
        let vnet = if dest == home {
            Vnet::Writeback
        } else {
            Vnet::Response
        };
        let msg = self.token_message(
            at,
            dest,
            addr,
            line.tokens,
            line.owner,
            line.dirty,
            false,
            line.version,
            vnet,
        );
        self.send(out, msg);
    }

    // ------------------------------------------------------------------
    // Transient request issue / reissue.
    // ------------------------------------------------------------------

    fn issue_transient(
        &mut self,
        now: Cycle,
        addr: BlockAddr,
        write: bool,
        reissue: bool,
        out: &mut Outbox,
    ) {
        let kind = if write { MsgKind::GetM } else { MsgKind::GetS };
        let mut msg = Message::new(
            self.node,
            Destination::Broadcast,
            addr,
            kind,
            Vnet::Request,
            now + self.controller_latency,
        );
        if reissue {
            msg = msg.as_reissue();
        }
        self.send(out, msg);
        // The broadcast does not loop back to this node, so if we are the
        // block's home we consult our own memory after the DRAM latency.
        if self.is_home(addr) {
            self.timer_seq += 1;
            out.arm_timer(
                now + self.controller_latency + self.dram_latency,
                Timer {
                    id: self.timer_seq,
                    addr,
                    kind: TimerKind::MemoryAccess,
                },
            );
        }
        self.arm_reissue_timer(now, addr, out);
    }

    fn arm_reissue_timer(&mut self, now: Cycle, addr: BlockAddr, out: &mut Outbox) {
        let Some(mshr) = self.mshrs.get(addr) else {
            return;
        };
        let timeout = self
            .latency
            .reissue_timeout(mshr.issue_count, &mut self.rng);
        self.timer_seq += 1;
        let seq = self.timer_seq;
        if let Some(mshr) = self.mshrs.get_mut(addr) {
            mshr.timer_seq = seq;
        }
        out.arm_timer(
            now + timeout,
            Timer {
                id: seq,
                addr,
                kind: TimerKind::Reissue,
            },
        );
    }

    fn escalate_to_persistent(&mut self, now: Cycle, addr: BlockAddr, out: &mut Outbox) {
        let Some(mshr) = self.mshrs.get_mut(addr) else {
            return;
        };
        if mshr.persistent {
            return;
        }
        mshr.persistent = true;
        let write = mshr.write;
        self.stats.persistent_requests_initiated += 1;
        let home = self.home_of(addr);
        let msg = Message::new(
            self.node,
            Destination::Node(home),
            addr,
            MsgKind::PersistentRequest { write },
            Vnet::Persistent,
            now + self.controller_latency,
        );
        self.send(out, msg);
    }

    // ------------------------------------------------------------------
    // Responding to transient requests (the TokenB response policy).
    // ------------------------------------------------------------------

    fn respond_to_request(
        &mut self,
        now: Cycle,
        requester: NodeId,
        addr: BlockAddr,
        write: bool,
        out: &mut Outbox,
    ) {
        // Active persistent requests override the performance protocol: while
        // one is active for this block, transient requests are ignored and
        // tokens flow only to the persistent requester.
        if self.persistent_table.active(addr).is_some() {
            return;
        }

        // --- Cache response -------------------------------------------------
        let cache_at = now + self.controller_latency + self.l2_latency;
        if let Some(line) = self.l2.get(addr).copied() {
            if line.tokens > 0 {
                if write {
                    // Exclusive request: hand over everything we have.
                    let msg = if line.owner {
                        self.data_response(
                            cache_at,
                            requester,
                            addr,
                            line.tokens,
                            true,
                            line.dirty,
                            false,
                            line.version,
                        )
                    } else {
                        self.token_message(
                            cache_at,
                            requester,
                            addr,
                            line.tokens,
                            false,
                            false,
                            false,
                            line.version,
                            Vnet::Response,
                        )
                    };
                    self.send(out, msg);
                    self.l2.remove(addr);
                    self.l1.invalidate(addr);
                } else if line.owner {
                    // Shared request and we are the owner.
                    let migratory = self.migratory_optimization
                        && line.tokens == self.total_tokens
                        && line.dirty;
                    if migratory {
                        // Migratory optimization: pass read/write permission.
                        let msg = self.data_response(
                            cache_at,
                            requester,
                            addr,
                            line.tokens,
                            true,
                            line.dirty,
                            false,
                            line.version,
                        );
                        self.send(out, msg);
                        self.l2.remove(addr);
                        self.l1.invalidate(addr);
                    } else if line.tokens > 1 {
                        // Keep the owner token, share one non-owner token with
                        // data.
                        let msg = self.data_response(
                            cache_at,
                            requester,
                            addr,
                            1,
                            false,
                            false,
                            false,
                            line.version,
                        );
                        self.send(out, msg);
                        if let Some(l) = self.l2.get(addr) {
                            l.tokens -= 1;
                        }
                    } else {
                        // We hold only the owner token: hand it over (with
                        // data) rather than refusing the request.
                        let msg = self.data_response(
                            cache_at,
                            requester,
                            addr,
                            1,
                            true,
                            line.dirty,
                            false,
                            line.version,
                        );
                        self.send(out, msg);
                        self.l2.remove(addr);
                        self.l1.invalidate(addr);
                    }
                }
                // Shared request at a non-owner sharer: ignore.
            }
        }

        // --- Memory (home) response -----------------------------------------
        if self.is_home(addr) {
            let total = self.total_tokens;
            let mem_version = self.memory.data_version(addr);
            let mem = self.memory.state_mut(addr);
            mem.ensure_initialized(total);
            if mem.tokens > 0 {
                let mem_at = now + self.controller_latency + self.dram_latency;
                if write {
                    let tokens = mem.tokens;
                    let owner = mem.owner;
                    mem.tokens = 0;
                    mem.owner = false;
                    let msg = if owner {
                        self.data_response(
                            mem_at,
                            requester,
                            addr,
                            tokens,
                            true,
                            false,
                            true,
                            mem_version,
                        )
                    } else {
                        self.token_message(
                            mem_at,
                            requester,
                            addr,
                            tokens,
                            false,
                            false,
                            true,
                            mem_version,
                            Vnet::Response,
                        )
                    };
                    self.send(out, msg);
                } else if mem.can_supply_data() {
                    // Shared request: memory supplies data plus one token,
                    // keeping the owner token when it can.
                    if mem.tokens > 1 {
                        mem.tokens -= 1;
                        let msg = self.data_response(
                            mem_at,
                            requester,
                            addr,
                            1,
                            false,
                            false,
                            true,
                            mem_version,
                        );
                        self.send(out, msg);
                    } else {
                        mem.tokens = 0;
                        mem.owner = false;
                        let msg = self.data_response(
                            mem_at,
                            requester,
                            addr,
                            1,
                            true,
                            false,
                            true,
                            mem_version,
                        );
                        self.send(out, msg);
                    }
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Receiving tokens.
    // ------------------------------------------------------------------

    #[allow(clippy::too_many_arguments)]
    fn receive_tokens(
        &mut self,
        now: Cycle,
        msg_src: NodeId,
        addr: BlockAddr,
        tokens: u32,
        owner: bool,
        dirty: bool,
        from_memory: bool,
        payload: Option<DataPayload>,
        vnet: Vnet,
        out: &mut Outbox,
    ) {
        // A persistent request by another node overrides everything: forward
        // the tokens straight to the starving requester.
        if let Some(target) = self.persistent_table.forward_target(addr, self.node) {
            let at = now + self.controller_latency;
            let version = payload.map(|p| p.version).unwrap_or(0);
            let msg = if owner {
                self.data_response(at, target, addr, tokens, true, dirty, from_memory, version)
            } else {
                self.token_message(
                    at,
                    target,
                    addr,
                    tokens,
                    false,
                    false,
                    from_memory,
                    version,
                    Vnet::Response,
                )
            };
            self.send(out, msg);
            return;
        }

        // Writebacks addressed to the home are absorbed by memory.
        if vnet == Vnet::Writeback && self.is_home(addr) {
            let total = self.total_tokens;
            if let Some(p) = payload {
                if owner {
                    self.memory.write_data(addr, p.version);
                }
            }
            let mem = self.memory.state_mut(addr);
            mem.ensure_initialized(total);
            mem.tokens += tokens;
            mem.owner |= owner;
            debug_assert!(mem.tokens <= total, "memory over-collected tokens");
            return;
        }

        // Otherwise the tokens join this node's cache.
        self.allocate_line(now, addr, out);
        let line = self.l2.get(addr).expect("line allocated immediately above");
        line.tokens += tokens;
        if owner {
            line.owner = true;
        }
        if let Some(p) = payload {
            if !line.dirty || !line.valid_data {
                line.version = p.version;
            }
            line.valid_data = true;
        }
        line.dirty |= dirty;

        if let Some(mshr) = self.mshrs.get_mut(addr) {
            if payload.is_some() {
                if from_memory {
                    mshr.data_from_memory = true;
                } else {
                    mshr.data_from_cache = true;
                }
            } else if msg_src != self.node {
                // Dataless token transfers still tell us who participated.
                let _ = msg_src;
            }
        }
        self.try_complete(now, addr, out);
    }

    /// Completes the outstanding miss for `addr` if the substrate now permits
    /// the pending operations.
    fn try_complete(&mut self, now: Cycle, addr: BlockAddr, out: &mut Outbox) {
        let total = self.total_tokens;
        let Some(mshr) = self.mshrs.get(addr) else {
            return;
        };
        let Some(line) = self.l2.peek(addr) else {
            return;
        };
        let satisfied = if mshr.write {
            line.writable(total)
        } else {
            line.readable()
        };
        if !satisfied {
            return;
        }
        let mut mshr = self
            .mshrs
            .release(addr)
            .expect("checked present immediately above");

        let kind = if mshr.write {
            if mshr.upgrade {
                MissKind::Upgrade
            } else {
                MissKind::Write
            }
        } else {
            MissKind::Read
        };
        let cache_to_cache = mshr.data_from_cache;
        // Perform the pending operations in order against the cache line,
        // completing each directly into the outbox (the MSHR is owned here,
        // so no borrow forces an intermediate collection), with one L2
        // lookup for the whole batch.
        let node_bits = (self.node.index() as u64 + 1) << 40;
        let line = self.l2.get(addr).expect("line present");
        for op in self.pending_ops.iter(&mshr.pending) {
            let version = if op.write {
                self.store_counter += 1;
                let v = node_bits | self.store_counter;
                line.version = v;
                line.dirty = true;
                v
            } else {
                line.version
            };
            out.complete(MissCompletion {
                req_id: op.req_id,
                addr,
                kind,
                issued_at: mshr.issued_at,
                completed_at: now,
                data_version: version,
                cache_to_cache,
            });
        }
        self.pending_ops.clear(&mut mshr.pending);

        // Statistics: miss class, latency, reissue histogram (Table 2).
        let miss_latency = now.saturating_sub(mshr.issued_at);
        self.latency.record(miss_latency);
        self.stats.misses.completed_misses += 1;
        self.stats.misses.total_miss_latency += miss_latency;
        match kind {
            MissKind::Read => self.stats.misses.read_misses += 1,
            MissKind::Write => self.stats.misses.write_misses += 1,
            MissKind::Upgrade => self.stats.misses.upgrade_misses += 1,
        }
        if mshr.data_from_cache {
            self.stats.misses.cache_to_cache += 1;
        } else if mshr.data_from_memory {
            self.stats.misses.from_memory += 1;
        } else {
            // Upgrade misses that only collected dataless tokens.
            self.stats.misses.from_memory += 1;
        }
        if mshr.persistent {
            self.stats.reissue.persistent += 1;
        } else {
            match mshr.issue_count {
                1 => self.stats.reissue.not_reissued += 1,
                2 => self.stats.reissue.reissued_once += 1,
                _ => self.stats.reissue.reissued_more += 1,
            }
        }

        // If this miss had escalated, tell the arbiter we are satisfied so it
        // can deactivate the persistent request.
        if mshr.persistent {
            let home = self.home_of(addr);
            let msg = Message::new(
                self.node,
                Destination::Node(home),
                addr,
                MsgKind::PersistentComplete,
                Vnet::Persistent,
                now + self.controller_latency,
            );
            self.send(out, msg);
        }
    }

    // ------------------------------------------------------------------
    // Persistent requests: table maintenance and arbiter plumbing.
    // ------------------------------------------------------------------

    fn apply_arbiter_actions(&mut self, now: Cycle, actions: Vec<ArbiterAction>, out: &mut Outbox) {
        for action in actions {
            match action {
                ArbiterAction::BroadcastActivate {
                    addr,
                    requester,
                    write,
                } => {
                    let msg = Message::new(
                        self.node,
                        Destination::Broadcast,
                        addr,
                        MsgKind::PersistentActivate { requester, write },
                        Vnet::Persistent,
                        now + self.controller_latency,
                    );
                    self.send(out, msg);
                    // Apply locally (the arbiter's own node does not message
                    // itself and does not ack).
                    self.activate_locally(now, addr, requester, write, out);
                }
                ArbiterAction::BroadcastDeactivate { addr } => {
                    let msg = Message::new(
                        self.node,
                        Destination::Broadcast,
                        addr,
                        MsgKind::PersistentDeactivate,
                        Vnet::Persistent,
                        now + self.controller_latency,
                    );
                    self.send(out, msg);
                    self.persistent_table.deactivate(addr);
                }
            }
        }
    }

    /// Records an activation in the local table and forwards any tokens this
    /// node currently holds (cache and, if home, memory) to the requester.
    fn activate_locally(
        &mut self,
        now: Cycle,
        addr: BlockAddr,
        requester: NodeId,
        write: bool,
        out: &mut Outbox,
    ) {
        self.persistent_table.activate(addr, requester, write);
        if requester == self.node {
            return;
        }
        // Forward cache tokens.
        if let Some(line) = self.l2.get(addr).copied() {
            if line.tokens > 0 {
                let at = now + self.controller_latency + self.l2_latency;
                let msg = if line.owner {
                    self.data_response(
                        at,
                        requester,
                        addr,
                        line.tokens,
                        true,
                        line.dirty,
                        false,
                        line.version,
                    )
                } else {
                    self.token_message(
                        at,
                        requester,
                        addr,
                        line.tokens,
                        false,
                        false,
                        false,
                        line.version,
                        Vnet::Response,
                    )
                };
                self.send(out, msg);
            }
            self.l2.remove(addr);
            self.l1.invalidate(addr);
        }
        // Forward memory tokens if this node is the home.
        if self.is_home(addr) {
            let total = self.total_tokens;
            let mem_version = self.memory.data_version(addr);
            let mem = self.memory.state_mut(addr);
            mem.ensure_initialized(total);
            if mem.tokens > 0 {
                let tokens = mem.tokens;
                let owner = mem.owner;
                mem.tokens = 0;
                mem.owner = false;
                let at = now + self.controller_latency + self.dram_latency;
                let msg = if owner {
                    self.data_response(at, requester, addr, tokens, true, false, true, mem_version)
                } else {
                    self.token_message(
                        at,
                        requester,
                        addr,
                        tokens,
                        false,
                        false,
                        true,
                        mem_version,
                        Vnet::Response,
                    )
                };
                self.send(out, msg);
            }
        }
    }

    fn ack_arbiter(&mut self, now: Cycle, addr: BlockAddr, out: &mut Outbox) {
        let arbiter_node = self.home_of(addr);
        let msg = Message::new(
            self.node,
            Destination::Node(arbiter_node),
            addr,
            MsgKind::PersistentAck,
            Vnet::Persistent,
            now + self.controller_latency,
        );
        self.send(out, msg);
    }

    /// Supplies tokens from this node's own memory to its own cache (used
    /// when the requester is also the home: the broadcast does not loop back,
    /// so the local memory is consulted directly after the DRAM latency).
    fn supply_from_local_memory(&mut self, now: Cycle, addr: BlockAddr, out: &mut Outbox) {
        if !self.is_home(addr) {
            return;
        }
        // If someone else's persistent request is active, memory tokens go to
        // them, not to us.
        if let Some(target) = self.persistent_table.forward_target(addr, self.node) {
            let total = self.total_tokens;
            let mem_version = self.memory.data_version(addr);
            let mem = self.memory.state_mut(addr);
            mem.ensure_initialized(total);
            if mem.tokens > 0 {
                let tokens = mem.tokens;
                let owner = mem.owner;
                mem.tokens = 0;
                mem.owner = false;
                let at = now + self.controller_latency;
                let msg = if owner {
                    self.data_response(at, target, addr, tokens, true, false, true, mem_version)
                } else {
                    self.token_message(
                        at,
                        target,
                        addr,
                        tokens,
                        false,
                        false,
                        true,
                        mem_version,
                        Vnet::Response,
                    )
                };
                self.send(out, msg);
            }
            return;
        }
        if self.mshrs.get(addr).is_none() {
            return;
        }
        let total = self.total_tokens;
        let mem_version = self.memory.data_version(addr);
        let mem = self.memory.state_mut(addr);
        mem.ensure_initialized(total);
        if mem.tokens == 0 {
            return;
        }
        let tokens = mem.tokens;
        let owner = mem.owner;
        mem.tokens = 0;
        mem.owner = false;
        self.receive_tokens(
            now,
            self.node,
            addr,
            tokens,
            owner,
            false,
            true,
            if owner {
                Some(DataPayload::new(mem_version))
            } else {
                // Memory without the owner token does not supply data.
                None
            },
            Vnet::Response,
            out,
        );
    }
}

impl CoherenceController for TokenBController {
    fn node(&self) -> NodeId {
        self.node
    }

    fn protocol_name(&self) -> &'static str {
        "TokenB"
    }

    fn access(&mut self, now: Cycle, op: &MemOp, out: &mut Outbox) -> AccessOutcome {
        let addr = op.addr.block(self.home_map.block_bytes());
        let write = op.kind.is_write();
        let total = self.total_tokens;
        let node_bits = (self.node.index() as u64 + 1) << 40;
        // One L1-hinted L2 access serves the whole hit path: the hint skips
        // the L2 tag probe on hits, and the version bump for a write hit
        // touches `store_counter` and `stats` directly (disjoint fields), so
        // the mutable line borrow never needs re-establishing.
        let mut had_readable_copy = false;
        let (l1_hit, line) = hinted_get(&mut self.l1, &mut self.l2, addr);
        let hit_latency = if l1_hit {
            self.l1.latency_ns()
        } else {
            self.l1.latency_ns() + self.l2_latency
        };
        if let Some(line) = line {
            if write && line.writable(total) {
                self.store_counter += 1;
                let version = node_bits | self.store_counter;
                line.version = version;
                line.dirty = true;
                if l1_hit {
                    self.stats.misses.l1_hits += 1;
                } else {
                    self.stats.misses.l2_hits += 1;
                }
                return AccessOutcome::Hit {
                    latency: hit_latency,
                    version,
                    valid_since: now,
                };
            }
            if !write && line.readable() {
                let version = line.version;
                if l1_hit {
                    self.stats.misses.l1_hits += 1;
                } else {
                    self.stats.misses.l2_hits += 1;
                }
                return AccessOutcome::Hit {
                    latency: hit_latency,
                    version,
                    valid_since: now,
                };
            }
            had_readable_copy = line.readable();
        }

        // Miss: merge into an existing MSHR or allocate a new one.
        if let Some(mshr) = self.mshrs.get_mut(addr) {
            self.pending_ops.push(
                &mut mshr.pending,
                PendingOp {
                    req_id: op.id,
                    write,
                },
            );
            if write && !mshr.write {
                // A read miss gains a write requirement: issue a GetM now.
                mshr.write = true;
                mshr.upgrade |= had_readable_copy;
                self.issue_transient(now, addr, true, false, out);
            }
            return AccessOutcome::Miss;
        }

        let mshr = TokenMshr {
            pending: self.pending_ops.singleton(PendingOp {
                req_id: op.id,
                write,
            }),
            write,
            upgrade: write && had_readable_copy,
            issued_at: now,
            issue_count: 1,
            persistent: false,
            timer_seq: 0,
            data_from_cache: false,
            data_from_memory: false,
        };
        self.mshrs
            .allocate(addr, mshr)
            .unwrap_or_else(|_| panic!("MSHR overflow at {}", self.node));
        self.issue_transient(now, addr, write, false, out);
        AccessOutcome::Miss
    }

    fn handle_message(&mut self, now: Cycle, msg: &Message, out: &mut Outbox) {
        self.stats.messages_received += 1;
        let addr = msg.addr;
        match &msg.kind {
            MsgKind::GetS => self.respond_to_request(now, msg.src, addr, false, out),
            MsgKind::GetM => self.respond_to_request(now, msg.src, addr, true, out),
            MsgKind::TokenData {
                tokens,
                owner,
                dirty,
                from_memory,
                payload,
            } => self.receive_tokens(
                now,
                msg.src,
                addr,
                *tokens,
                *owner,
                *dirty,
                *from_memory,
                Some(*payload),
                msg.vnet,
                out,
            ),
            MsgKind::TokenOnly { tokens } => self.receive_tokens(
                now, msg.src, addr, *tokens, false, false, false, None, msg.vnet, out,
            ),
            MsgKind::PersistentRequest { write } => {
                debug_assert!(self.is_home(addr), "persistent request at non-home node");
                let actions = self.arbiter.request(addr, msg.src, *write);
                self.apply_arbiter_actions(now, actions, out);
            }
            MsgKind::PersistentActivate { requester, write } => {
                self.activate_locally(now, addr, *requester, *write, out);
                self.ack_arbiter(now, addr, out);
            }
            MsgKind::PersistentDeactivate => {
                self.persistent_table.deactivate(addr);
                self.ack_arbiter(now, addr, out);
            }
            MsgKind::PersistentAck => {
                let actions = self.arbiter.ack(msg.src);
                self.apply_arbiter_actions(now, actions, out);
            }
            MsgKind::PersistentComplete => {
                let actions = self.arbiter.complete(addr, msg.src);
                self.apply_arbiter_actions(now, actions, out);
            }
            other => {
                debug_assert!(
                    false,
                    "TokenB received a message it does not understand: {other:?}"
                );
            }
        }
    }

    fn handle_timer(&mut self, now: Cycle, timer: Timer, out: &mut Outbox) {
        match timer.kind {
            TimerKind::Reissue => {
                let Some(mshr) = self.mshrs.get(timer.addr) else {
                    return;
                };
                if mshr.timer_seq != timer.id || mshr.persistent {
                    return;
                }
                if mshr.issue_count > self.reissues_before_persistent {
                    self.escalate_to_persistent(now, timer.addr, out);
                    return;
                }
                let write = mshr.write;
                if let Some(mshr) = self.mshrs.get_mut(timer.addr) {
                    mshr.issue_count += 1;
                }
                self.issue_transient(now, timer.addr, write, true, out);
            }
            TimerKind::MemoryAccess => {
                self.supply_from_local_memory(now, timer.addr, out);
            }
            TimerKind::PersistentEscalation | TimerKind::Other(_) => {}
        }
    }

    fn stats(&self) -> ControllerStats {
        let mut stats = self.stats.clone();
        stats.bump(
            "persistent_activations_observed",
            self.persistent_table.activations_seen(),
        );
        stats.bump("arbiter_activations", self.arbiter.activations());
        stats
    }

    fn audit_block(&self, addr: BlockAddr) -> Vec<BlockAudit> {
        let mut audits = Vec::new();
        if let Some(line) = self.l2.peek(addr) {
            audits.push(BlockAudit {
                tokens: line.tokens,
                owner_token: line.owner,
                readable: line.readable(),
                writable: line.writable(self.total_tokens),
                data_version: line.version,
                in_memory: false,
            });
        }
        if self.is_home(addr) {
            if let Some(mem) = self.memory.state(addr) {
                if mem.initialized {
                    audits.push(BlockAudit {
                        tokens: mem.tokens,
                        owner_token: mem.owner,
                        readable: false,
                        writable: false,
                        data_version: self.memory.data_version(addr),
                        in_memory: true,
                    });
                }
            }
        }
        audits
    }

    fn audited_blocks(&self) -> Vec<BlockAddr> {
        let mut blocks: BTreeSet<BlockAddr> = self.l2.blocks().into_iter().collect();
        for (addr, state) in self.memory.touched_blocks() {
            if state.initialized {
                blocks.insert(addr);
            }
        }
        blocks.into_iter().collect()
    }

    fn outstanding_misses(&self) -> usize {
        self.mshrs.len()
    }

    fn outstanding_blocks(&self) -> Vec<BlockAddr> {
        self.mshrs.blocks_sorted()
    }

    fn set_arbiter_sabotage(&mut self, on: bool) {
        self.arbiter.set_sabotage(on);
    }

    fn line_state_stats(&self) -> LineStateStats {
        LineStateStats {
            mshr_peak: self.mshrs.high_water() as u64,
            wb_buffer_peak: 0,
            wb_window_peak: 0,
            home_peak: self.memory.entries_high_water(),
            persistent_peak: self.persistent_table.high_water() as u64,
            state_bytes: self.mshrs.state_bytes()
                + self.memory.state_bytes()
                + self.persistent_table.state_bytes(),
            retired_bytes_est: self.mshrs.retired_bytes_estimate()
                + self.memory.retired_bytes_estimate()
                + self.persistent_table.retired_bytes_estimate(),
        }
    }

    fn save_state(&self, w: &mut SnapWriter) {
        w.u64(self.rng.state());
        w.u64(self.store_counter);
        w.u64(self.timer_seq);
        self.stats.save_state(w);
        self.latency.save_state(w);
        self.l1.save_state(w);
        self.l2.save_state(w, emit_token_line);
        self.memory.save_state(w, emit_mem_tokens);
        self.mshrs
            .save_state(w, |w, mshr| emit_token_mshr(w, mshr, &self.pending_ops));
        self.persistent_table.save_state(w);
        self.arbiter.save_state(w);
    }

    fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapshotError> {
        self.rng = DeterministicRng::from_state(r.u64()?);
        self.store_counter = r.u64()?;
        self.timer_seq = r.u64()?;
        self.stats = ControllerStats::load_state(r)?;
        self.latency.load_state(r)?;
        self.l1.load_state(r)?;
        self.l2.load_state(r, read_token_line)?;
        self.memory.load_state(r, read_mem_tokens)?;
        // Rebuild the pending-op pool from scratch; handles saved inside the
        // reloaded MSHR entries are re-minted as they are read.
        self.pending_ops.reset();
        let slab = &mut self.pending_ops;
        self.mshrs.load_state(r, |r| read_token_mshr(r, slab))?;
        self.persistent_table.load_state(r)?;
        self.arbiter.load_state(r)?;
        Ok(())
    }
}

fn emit_token_line(w: &mut SnapWriter, line: &TokenLine) {
    w.u32(line.tokens);
    w.bool(line.owner);
    w.bool(line.valid_data);
    w.bool(line.dirty);
    w.u64(line.version);
}

fn read_token_line(r: &mut SnapReader<'_>) -> Result<TokenLine, SnapshotError> {
    Ok(TokenLine {
        tokens: r.u32()?,
        owner: r.bool()?,
        valid_data: r.bool()?,
        dirty: r.bool()?,
        version: r.u64()?,
    })
}

fn emit_mem_tokens(w: &mut SnapWriter, mem: &MemTokens) {
    w.bool(mem.initialized);
    w.u32(mem.tokens);
    w.bool(mem.owner);
}

fn read_mem_tokens(r: &mut SnapReader<'_>) -> Result<MemTokens, SnapshotError> {
    Ok(MemTokens {
        initialized: r.bool()?,
        tokens: r.u32()?,
        owner: r.bool()?,
    })
}

fn emit_token_mshr(w: &mut SnapWriter, mshr: &TokenMshr, slab: &OpSlab<PendingOp>) {
    w.seq(slab.iter(&mshr.pending), |w, op| {
        w.u64(op.req_id.value());
        w.bool(op.write);
    });
    w.bool(mshr.write);
    w.bool(mshr.upgrade);
    w.u64(mshr.issued_at);
    w.u32(mshr.issue_count);
    w.bool(mshr.persistent);
    w.u64(mshr.timer_seq);
    w.bool(mshr.data_from_cache);
    w.bool(mshr.data_from_memory);
}

fn read_token_mshr(
    r: &mut SnapReader<'_>,
    slab: &mut OpSlab<PendingOp>,
) -> Result<TokenMshr, SnapshotError> {
    let len = r.bounded_len(9)?;
    let mut pending = OpList::new();
    for _ in 0..len {
        let op = PendingOp {
            req_id: ReqId::new(r.u64()?),
            write: r.bool()?,
        };
        slab.push(&mut pending, op);
    }
    Ok(TokenMshr {
        pending,
        write: r.bool()?,
        upgrade: r.bool()?,
        issued_at: r.u64()?,
        issue_count: r.u32()?,
        persistent: r.bool()?,
        timer_seq: r.u64()?,
        data_from_cache: r.bool()?,
        data_from_memory: r.bool()?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tc_types::{Address, MemOpKind};

    const BLOCK: u64 = 64;

    fn config(nodes: usize) -> SystemConfig {
        SystemConfig::isca03_default().with_nodes(nodes)
    }

    fn controller(node: usize, nodes: usize) -> TokenBController {
        TokenBController::new(NodeId::new(node), &config(nodes))
    }

    fn load(addr: u64, id: u64) -> MemOp {
        MemOp::new(ReqId::new(id), Address::new(addr), MemOpKind::Load)
    }

    fn store(addr: u64, id: u64) -> MemOp {
        MemOp::new(ReqId::new(id), Address::new(addr), MemOpKind::Store)
    }

    /// Delivers every message in `out` that is destined for `to`, returning
    /// the receiving controller's outbox. A tiny two-node harness for unit
    /// tests; the full system runner lives in `tc-system`.
    fn deliver(out: &Outbox, to: &mut TokenBController, now: Cycle) -> Outbox {
        let mut next = Outbox::new();
        for msg in &out.messages {
            if msg.dest.includes(to.node(), msg.src) {
                to.handle_message(now, msg, &mut next);
            }
        }
        next
    }

    #[test]
    fn steady_state_miss_traffic_recycles_pending_op_storage() {
        let mut home = controller(0, 4);
        let mut requester = controller(1, 4);

        // Warm-up: one full read-miss round trip establishes the pool.
        let mut out = Outbox::new();
        requester.access(0, &load(0, 1), &mut out);
        let home_out = deliver(&out, &mut home, 20);
        deliver(&home_out, &mut requester, 120);
        assert_eq!(requester.outstanding_misses(), 0);
        let (fresh_after_warmup, _) = requester.pending_ops.counters();
        assert_eq!(fresh_after_warmup, 1);

        // Steady state: churn many more misses (distinct home-0 blocks so
        // each access is a genuine miss) than the warm-up population.
        for round in 1..200u64 {
            let addr = round * 4 * BLOCK;
            let at = 1_000 * round;
            let mut out = Outbox::new();
            requester.access(at, &load(addr, round + 1), &mut out);
            let home_out = deliver(&out, &mut home, at + 20);
            deliver(&home_out, &mut requester, at + 120);
            assert_eq!(requester.outstanding_misses(), 0);
        }

        let (fresh, recycled) = requester.pending_ops.counters();
        assert_eq!(
            fresh, fresh_after_warmup,
            "steady-state misses must recycle pending-op storage, not grow it"
        );
        assert_eq!(recycled, 199);
        assert_eq!(requester.pending_ops.live(), 0);
    }

    #[test]
    fn cold_load_miss_issues_a_broadcast_gets() {
        let mut c = controller(1, 4);
        let mut out = Outbox::new();
        let outcome = c.access(0, &load(0x1000, 1), &mut out);
        assert_eq!(outcome, AccessOutcome::Miss);
        assert_eq!(out.messages.len(), 1);
        assert_eq!(out.messages[0].kind, MsgKind::GetS);
        assert_eq!(out.messages[0].dest, Destination::Broadcast);
        assert_eq!(c.outstanding_misses(), 1);
        // A reissue timer was armed.
        assert!(out.timers.iter().any(|(_, t)| t.kind == TimerKind::Reissue));
    }

    #[test]
    fn home_memory_responds_to_gets_with_data_and_one_token() {
        // Node 0 is the home of block 0 (block number 0 % 4 == 0).
        let mut home = controller(0, 4);
        let mut requester = controller(1, 4);
        let mut req_out = Outbox::new();
        requester.access(0, &load(0, 1), &mut req_out);

        // Deliver the GetS to the home node.
        let home_out = deliver(&req_out, &mut home, 20);
        assert_eq!(home_out.messages.len(), 1);
        let response = &home_out.messages[0];
        match &response.kind {
            MsgKind::TokenData {
                tokens,
                owner,
                from_memory,
                ..
            } => {
                assert_eq!(*tokens, 1);
                assert!(!owner, "memory keeps the owner token when it can");
                assert!(from_memory);
            }
            other => panic!("expected TokenData, got {other:?}"),
        }
        // Memory kept T-1 tokens.
        assert_eq!(home.tokens_held(BlockAddr::new(0)), 15);

        // Deliver the response back: the requester's miss completes.
        let final_out = deliver(&home_out, &mut requester, 120);
        assert_eq!(final_out.completions.len(), 1);
        assert_eq!(final_out.completions[0].kind, MissKind::Read);
        assert!(!final_out.completions[0].cache_to_cache);
        assert_eq!(requester.cache_state_name(BlockAddr::new(0)), "S");
        assert_eq!(requester.outstanding_misses(), 0);
    }

    #[test]
    fn store_miss_collects_all_tokens_and_becomes_modified() {
        let mut home = controller(0, 4);
        let mut writer = controller(1, 4);
        let mut out = Outbox::new();
        writer.access(0, &store(0, 1), &mut out);
        assert_eq!(out.messages[0].kind, MsgKind::GetM);

        let home_out = deliver(&out, &mut home, 30);
        // Memory hands over everything, including the owner token.
        let response = &home_out.messages[0];
        assert!(matches!(
            response.kind,
            MsgKind::TokenData {
                tokens: 16,
                owner: true,
                ..
            }
        ));
        assert_eq!(home.tokens_held(BlockAddr::new(0)), 0);

        let done = deliver(&home_out, &mut writer, 130);
        assert_eq!(done.completions.len(), 1);
        assert_eq!(done.completions[0].kind, MissKind::Write);
        assert_eq!(writer.cache_state_name(BlockAddr::new(0)), "M");
        assert!(done.completions[0].data_version > 0);
    }

    #[test]
    fn write_hit_in_modified_state_stays_local() {
        let mut home = controller(0, 4);
        let mut writer = controller(1, 4);
        let mut out = Outbox::new();
        writer.access(0, &store(0, 1), &mut out);
        let home_out = deliver(&out, &mut home, 30);
        deliver(&home_out, &mut writer, 130);

        // Second store to the same block: a pure cache hit, no messages.
        let mut out2 = Outbox::new();
        let outcome = writer.access(200, &store(0, 2), &mut out2);
        assert!(matches!(outcome, AccessOutcome::Hit { .. }));
        assert!(out2.messages.is_empty());
    }

    #[test]
    fn cache_owner_supplies_data_to_reader_and_keeps_owner_token() {
        let total_nodes = 4;
        let mut home = controller(0, total_nodes);
        let mut writer = controller(1, total_nodes);
        let mut reader = controller(2, total_nodes);

        // Writer obtains M for block 0 but does NOT dirty it via the
        // migratory path (we disable migratory behaviour by making the block
        // clean: obtain M, never write again). First get all tokens.
        let mut out = Outbox::new();
        writer.access(0, &store(0, 1), &mut out);
        let home_out = deliver(&out, &mut home, 30);
        deliver(&home_out, &mut writer, 130);

        // Reader issues a load; writer is dirty M, so with the migratory
        // optimization it hands over everything.
        let mut rout = Outbox::new();
        reader.access(300, &load(0, 2), &mut rout);
        let writer_out = deliver(&rout, &mut writer, 320);
        assert!(matches!(
            writer_out.messages[0].kind,
            MsgKind::TokenData {
                tokens: 16,
                owner: true,
                ..
            }
        ));
        let reader_done = deliver(&writer_out, &mut reader, 420);
        assert_eq!(reader_done.completions.len(), 1);
        assert!(reader_done.completions[0].cache_to_cache);
        assert_eq!(reader.cache_state_name(BlockAddr::new(0)), "M");
        assert_eq!(writer.cache_state_name(BlockAddr::new(0)), "I");
    }

    #[test]
    fn non_migratory_owner_shares_a_single_token() {
        let mut c = controller(1, 4);
        // Construct an owned-but-clean line directly: 16 tokens, not dirty.
        let mut out = Outbox::new();
        c.receive_tokens(
            0,
            NodeId::new(0),
            BlockAddr::new(0),
            16,
            true,
            false,
            true,
            Some(DataPayload::new(7)),
            Vnet::Response,
            &mut out,
        );
        assert_eq!(c.cache_state_name(BlockAddr::new(0)), "E");

        // A GetS arrives: the clean owner shares one token + data and keeps
        // the rest (no migratory hand-off because the block is clean).
        let gets = Message::new(
            NodeId::new(2),
            Destination::Broadcast,
            BlockAddr::new(0),
            MsgKind::GetS,
            Vnet::Request,
            100,
        );
        let mut out = Outbox::new();
        c.handle_message(100, &gets, &mut out);
        assert_eq!(out.messages.len(), 1);
        match &out.messages[0].kind {
            MsgKind::TokenData { tokens, owner, .. } => {
                assert_eq!(*tokens, 1);
                assert!(!owner);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(c.tokens_held(BlockAddr::new(0)), 15);
        assert_eq!(c.cache_state_name(BlockAddr::new(0)), "O");
    }

    #[test]
    fn shared_copies_send_dataless_acks_on_getm() {
        let mut c = controller(1, 4);
        let mut out = Outbox::new();
        // Hold two non-owner tokens with data (state S).
        c.receive_tokens(
            0,
            NodeId::new(0),
            BlockAddr::new(0),
            2,
            false,
            false,
            true,
            Some(DataPayload::new(3)),
            Vnet::Response,
            &mut out,
        );
        assert_eq!(c.cache_state_name(BlockAddr::new(0)), "S");

        let getm = Message::new(
            NodeId::new(3),
            Destination::Broadcast,
            BlockAddr::new(0),
            MsgKind::GetM,
            Vnet::Request,
            50,
        );
        let mut out = Outbox::new();
        c.handle_message(50, &getm, &mut out);
        assert_eq!(out.messages.len(), 1);
        assert_eq!(out.messages[0].kind, MsgKind::TokenOnly { tokens: 2 });
        assert_eq!(c.cache_state_name(BlockAddr::new(0)), "I");
    }

    #[test]
    fn sharers_ignore_gets_requests() {
        let mut c = controller(1, 4);
        let mut out = Outbox::new();
        c.receive_tokens(
            0,
            NodeId::new(0),
            BlockAddr::new(0),
            2,
            false,
            false,
            true,
            Some(DataPayload::new(3)),
            Vnet::Response,
            &mut out,
        );
        let gets = Message::new(
            NodeId::new(3),
            Destination::Broadcast,
            BlockAddr::new(0),
            MsgKind::GetS,
            Vnet::Request,
            50,
        );
        let mut out = Outbox::new();
        c.handle_message(50, &gets, &mut out);
        assert!(out.messages.is_empty(), "a non-owner sharer stays silent");
    }

    #[test]
    fn reissue_timer_rebroadcasts_the_request() {
        let mut c = controller(1, 4);
        let mut out = Outbox::new();
        c.access(0, &store(0x40, 1), &mut out);
        let (fire_at, timer) = out
            .timers
            .iter()
            .find(|(_, t)| t.kind == TimerKind::Reissue)
            .copied()
            .expect("reissue timer armed");

        let mut out2 = Outbox::new();
        c.handle_timer(fire_at, timer, &mut out2);
        let reissued: Vec<_> = out2
            .messages
            .iter()
            .filter(|m| m.kind == MsgKind::GetM)
            .collect();
        assert_eq!(reissued.len(), 1);
        assert!(
            reissued[0].reissue,
            "the rebroadcast is marked as a reissue"
        );
    }

    #[test]
    fn repeated_timeouts_escalate_to_a_persistent_request() {
        let mut c = controller(1, 4);
        let mut out = Outbox::new();
        c.access(0, &store(0x40, 1), &mut out);
        let mut timers: Vec<(Cycle, Timer)> = out
            .timers
            .iter()
            .filter(|(_, t)| t.kind == TimerKind::Reissue)
            .copied()
            .collect();
        let mut persistent_sent = false;
        for _ in 0..10 {
            let Some((at, timer)) = timers.pop() else {
                break;
            };
            let mut step = Outbox::new();
            c.handle_timer(at, timer, &mut step);
            if step
                .messages
                .iter()
                .any(|m| matches!(m.kind, MsgKind::PersistentRequest { .. }))
            {
                persistent_sent = true;
                break;
            }
            timers = step
                .timers
                .iter()
                .filter(|(_, t)| t.kind == TimerKind::Reissue)
                .copied()
                .collect();
        }
        assert!(persistent_sent, "starving miss must escalate");
        assert_eq!(c.stats().persistent_requests_initiated, 1);
    }

    #[test]
    fn persistent_activation_forwards_tokens_from_every_holder() {
        let mut holder = controller(2, 4);
        let mut out = Outbox::new();
        // The holder has all 16 tokens.
        holder.receive_tokens(
            0,
            NodeId::new(0),
            BlockAddr::new(0),
            16,
            true,
            true,
            false,
            Some(DataPayload::new(9)),
            Vnet::Response,
            &mut out,
        );
        // An activation for requester node 3 arrives.
        let activate = Message::new(
            NodeId::new(0),
            Destination::Broadcast,
            BlockAddr::new(0),
            MsgKind::PersistentActivate {
                requester: NodeId::new(3),
                write: true,
            },
            Vnet::Persistent,
            100,
        );
        let mut out = Outbox::new();
        holder.handle_message(100, &activate, &mut out);
        // The holder forwards everything to node 3 and acks the arbiter.
        let forwarded = out
            .messages
            .iter()
            .find(|m| matches!(m.kind, MsgKind::TokenData { tokens: 16, .. }))
            .expect("tokens forwarded");
        assert_eq!(forwarded.dest, Destination::Node(NodeId::new(3)));
        assert!(out
            .messages
            .iter()
            .any(|m| m.kind == MsgKind::PersistentAck));
        assert_eq!(holder.cache_state_name(BlockAddr::new(0)), "I");

        // Tokens that arrive later are forwarded as well, because the table
        // entry persists until deactivation.
        let late = Message::new(
            NodeId::new(1),
            Destination::Node(NodeId::new(2)),
            BlockAddr::new(0),
            MsgKind::TokenOnly { tokens: 1 },
            Vnet::Response,
            200,
        );
        let mut out = Outbox::new();
        holder.handle_message(200, &late, &mut out);
        assert_eq!(out.messages.len(), 1);
        assert_eq!(out.messages[0].dest, Destination::Node(NodeId::new(3)));

        // After deactivation the holder keeps tokens again.
        let deactivate = Message::new(
            NodeId::new(0),
            Destination::Broadcast,
            BlockAddr::new(0),
            MsgKind::PersistentDeactivate,
            Vnet::Persistent,
            300,
        );
        let mut out = Outbox::new();
        holder.handle_message(300, &deactivate, &mut out);
        let late2 = Message::new(
            NodeId::new(1),
            Destination::Node(NodeId::new(2)),
            BlockAddr::new(0),
            MsgKind::TokenOnly { tokens: 1 },
            Vnet::Response,
            400,
        );
        let mut out = Outbox::new();
        holder.handle_message(400, &late2, &mut out);
        assert!(out.messages.is_empty());
        assert_eq!(holder.tokens_held(BlockAddr::new(0)), 1);
    }

    #[test]
    fn transient_requests_are_ignored_while_a_persistent_request_is_active() {
        let mut holder = controller(2, 4);
        let mut out = Outbox::new();
        holder.receive_tokens(
            0,
            NodeId::new(0),
            BlockAddr::new(4),
            4,
            false,
            false,
            true,
            Some(DataPayload::new(1)),
            Vnet::Response,
            &mut out,
        );
        let activate = Message::new(
            NodeId::new(0),
            Destination::Broadcast,
            BlockAddr::new(4),
            MsgKind::PersistentActivate {
                requester: NodeId::new(3),
                write: true,
            },
            Vnet::Persistent,
            10,
        );
        let mut out = Outbox::new();
        holder.handle_message(10, &activate, &mut out);

        // A racing transient GetM from node 1 is ignored: node 3's persistent
        // request owns every token for this block until deactivation.
        let getm = Message::new(
            NodeId::new(1),
            Destination::Broadcast,
            BlockAddr::new(4),
            MsgKind::GetM,
            Vnet::Request,
            20,
        );
        let mut out = Outbox::new();
        holder.handle_message(20, &getm, &mut out);
        assert!(out.messages.is_empty());
    }

    #[test]
    fn eviction_sends_tokens_home_as_a_writeback() {
        let mut small_config = config(4);
        // Shrink the L2 to two sets x 4 ways so evictions are easy to force.
        small_config.l2.size_bytes = 8 * 64;
        small_config.l2.associativity = 4;
        let mut c = TokenBController::new(NodeId::new(1), &small_config);
        let mut out = Outbox::new();
        // Fill one set (blocks congruent mod 2) with owned lines.
        for i in 0..5u64 {
            let addr = BlockAddr::new(i * 2);
            c.receive_tokens(
                0,
                NodeId::new(0),
                addr,
                16,
                true,
                true,
                false,
                Some(DataPayload::new(i + 1)),
                Vnet::Response,
                &mut out,
            );
        }
        let writebacks: Vec<_> = out
            .messages
            .iter()
            .filter(|m| m.vnet == Vnet::Writeback)
            .collect();
        assert_eq!(writebacks.len(), 1, "one line must have been evicted");
        assert!(matches!(
            writebacks[0].kind,
            MsgKind::TokenData { owner: true, .. }
        ));
        assert_eq!(c.stats().misses.writebacks, 1);
    }

    #[test]
    fn home_absorbs_writebacks_into_memory() {
        let mut home = controller(0, 4);
        let wb = Message::new(
            NodeId::new(2),
            Destination::Node(NodeId::new(0)),
            BlockAddr::new(0),
            MsgKind::TokenData {
                tokens: 16,
                owner: true,
                dirty: true,
                from_memory: false,
                payload: DataPayload::new(77),
            },
            Vnet::Writeback,
            500,
        );
        let mut out = Outbox::new();
        // First the home must have handed its tokens out, otherwise the
        // writeback would double-count; simulate by draining memory first.
        let getm = Message::new(
            NodeId::new(2),
            Destination::Broadcast,
            BlockAddr::new(0),
            MsgKind::GetM,
            Vnet::Request,
            10,
        );
        home.handle_message(10, &getm, &mut out);
        assert_eq!(home.tokens_held(BlockAddr::new(0)), 0);

        let mut out = Outbox::new();
        home.handle_message(500, &wb, &mut out);
        assert!(out.messages.is_empty());
        assert_eq!(home.tokens_held(BlockAddr::new(0)), 16);
        let audit = home.audit_block(BlockAddr::new(0));
        let mem_audit = audit.iter().find(|a| a.in_memory).expect("memory audit");
        assert_eq!(mem_audit.data_version, 77);
    }

    #[test]
    fn upgrade_miss_is_reported_as_upgrade() {
        let mut c = controller(1, 4);
        let mut out = Outbox::new();
        // Hold a readable shared copy first.
        c.receive_tokens(
            0,
            NodeId::new(0),
            BlockAddr::new(0),
            1,
            false,
            false,
            true,
            Some(DataPayload::new(5)),
            Vnet::Response,
            &mut out,
        );
        assert_eq!(c.cache_state_name(BlockAddr::new(0)), "S");

        // A store to the same block misses (needs all tokens).
        let mut out = Outbox::new();
        let outcome = c.access(100, &store(0, 9), &mut out);
        assert_eq!(outcome, AccessOutcome::Miss);

        // The remaining 15 tokens arrive with the owner token.
        let mut out2 = Outbox::new();
        c.receive_tokens(
            200,
            NodeId::new(0),
            BlockAddr::new(0),
            15,
            true,
            false,
            true,
            Some(DataPayload::new(5)),
            Vnet::Response,
            &mut out2,
        );
        assert_eq!(out2.completions.len(), 1);
        assert_eq!(out2.completions[0].kind, MissKind::Upgrade);
        assert_eq!(c.stats().misses.upgrade_misses, 1);
        assert_eq!(c.cache_state_name(BlockAddr::new(0)), "M");
    }

    #[test]
    fn audit_reports_tokens_across_cache_and_memory() {
        let mut home = controller(0, 4);
        let mut out = Outbox::new();
        // Home's own processor reads a block it homes: memory supplies the
        // tokens through the local-memory timer path.
        home.access(0, &load(0, 1), &mut out);
        let memory_timer = out
            .timers
            .iter()
            .find(|(_, t)| t.kind == TimerKind::MemoryAccess)
            .copied()
            .expect("local memory consultation armed");
        let mut out2 = Outbox::new();
        home.handle_timer(memory_timer.0, memory_timer.1, &mut out2);
        assert_eq!(out2.completions.len(), 1);
        // All 16 tokens still live at node 0, split between cache and memory
        // or entirely in the cache; the audit must account for every one.
        let total: u32 = home
            .audit_block(BlockAddr::new(0))
            .iter()
            .map(|a| a.tokens)
            .sum();
        assert_eq!(total, 16);
        assert!(home.audited_blocks().contains(&BlockAddr::new(0)));
    }

    #[test]
    fn stats_record_reissue_histogram_categories() {
        let mut home = controller(0, 4);
        let mut requester = controller(1, 4);
        let mut out = Outbox::new();
        requester.access(0, &load(0, 1), &mut out);
        let home_out = deliver(&out, &mut home, 30);
        deliver(&home_out, &mut requester, 130);
        let stats = requester.stats();
        assert_eq!(stats.reissue.not_reissued, 1);
        assert_eq!(stats.reissue.total(), 1);
        assert_eq!(stats.misses.read_misses, 1);
    }

    #[test]
    fn merged_accesses_complete_together() {
        let mut home = controller(0, 4);
        let mut c = controller(1, 4);
        let mut out = Outbox::new();
        c.access(0, &load(0, 1), &mut out);
        // A second load to the same block merges into the same MSHR.
        let outcome = c.access(5, &load(0, 2), &mut out);
        assert_eq!(outcome, AccessOutcome::Miss);
        assert_eq!(c.outstanding_misses(), 1);

        let home_out = deliver(&out, &mut home, 30);
        let done = deliver(&home_out, &mut c, 130);
        assert_eq!(done.completions.len(), 2);
    }

    #[test]
    fn write_versions_are_unique_and_increasing_per_node() {
        let mut home = controller(0, 4);
        let mut c = controller(1, 4);
        let mut versions = Vec::new();
        for (i, block) in [0u64, 4, 8].iter().enumerate() {
            let mut out = Outbox::new();
            c.access(i as Cycle * 1000, &store(block * BLOCK, i as u64), &mut out);
            let home_out = deliver(&out, &mut home, i as Cycle * 1000 + 30);
            let done = deliver(&home_out, &mut c, i as Cycle * 1000 + 130);
            versions.push(done.completions[0].data_version);
        }
        let mut sorted = versions.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), versions.len());
    }

    #[test]
    fn snapshot_mid_miss_restores_identical_behavior() {
        let mut home = controller(0, 2);
        let mut c = controller(1, 2);
        // Warm up: one completed store so caches, stats, and the store
        // counter all carry non-trivial state into the snapshot.
        let mut out = Outbox::new();
        c.access(0, &store(0, 1), &mut out);
        let home_out = deliver(&out, &mut home, 30);
        deliver(&home_out, &mut c, 130);
        // Leave a miss outstanding (MSHR allocated, reissue timer armed).
        let mut out = Outbox::new();
        c.access(1000, &store(4 * BLOCK, 2), &mut out);
        assert_eq!(c.outstanding_misses(), 1);

        let mut w = SnapWriter::new();
        c.save_state(&mut w);
        let bytes = w.into_bytes();
        let mut restored = controller(1, 2);
        let mut r = SnapReader::new(&bytes);
        restored.load_state(&mut r).unwrap();
        r.finish().unwrap();

        assert_eq!(restored.outstanding_misses(), 1);
        assert_eq!(restored.outstanding_blocks(), c.outstanding_blocks());
        // Drive both copies through the identical completion and a follow-up
        // hit; every observable output must match.
        let home_out = deliver(&out, &mut home, 1030);
        let done_orig = deliver(&home_out, &mut c, 1130);
        let done_rest = deliver(&home_out, &mut restored, 1130);
        assert_eq!(format!("{done_orig:?}"), format!("{done_rest:?}"));
        let mut o1 = Outbox::new();
        let mut o2 = Outbox::new();
        let hit_orig = c.access(1200, &store(4 * BLOCK, 3), &mut o1);
        let hit_rest = restored.access(1200, &store(4 * BLOCK, 3), &mut o2);
        assert_eq!(hit_orig, hit_rest);
        assert_eq!(
            format!("{:?}", c.stats()),
            format!("{:?}", restored.stats())
        );
        assert_eq!(
            format!("{:?}", c.audit_block(BlockAddr::new(4))),
            format!("{:?}", restored.audit_block(BlockAddr::new(4)))
        );
        assert_eq!(c.line_state_stats(), restored.line_state_stats());
    }

    #[test]
    fn snapshot_load_rejects_truncated_bytes() {
        let c = controller(0, 2);
        let mut w = SnapWriter::new();
        c.save_state(&mut w);
        let bytes = w.into_bytes();
        let mut fresh = controller(0, 2);
        let mut r = SnapReader::new(&bytes[..bytes.len() - 1]);
        assert!(fresh.load_state(&mut r).is_err());
    }
}
