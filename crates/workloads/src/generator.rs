//! Deterministic per-processor memory-operation generators.

use std::collections::VecDeque;

use tc_sim::{DeterministicRng, SnapReader, SnapWriter, SnapshotError};
use tc_types::{Address, Cycle, MemOp, MemOpKind, NodeId, ReqId};

use crate::profile::{RegionKind, WorkloadProfile};

/// Block-number bases of the synthetic address-space regions. They are far
/// enough apart that regions never overlap for any realistic profile.
const PRIVATE_BASE: u64 = 0x0100_0000;
const PRIVATE_STRIDE: u64 = 0x0010_0000;
const SHARED_READ_BASE: u64 = 0x0800_0000;
const MIGRATORY_BASE: u64 = 0x0900_0000;
const PRODUCER_CONSUMER_BASE: u64 = 0x0A00_0000;

/// Cache block size used to turn block numbers into byte addresses.
const BLOCK_BYTES: u64 = 64;

/// One generated operation: the compute time that precedes it and the memory
/// operation itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GeneratedOp {
    /// Compute ("think") cycles the processor spends before issuing `op`.
    pub think_cycles: Cycle,
    /// The memory operation to issue.
    pub op: MemOp,
}

/// A deterministic stream of memory operations for one processor.
///
/// Two generators built with the same profile, node, node count, and seed
/// produce identical streams, so different protocols can be compared on
/// exactly the same work.
#[derive(Debug, Clone)]
pub struct WorkloadGenerator {
    profile: WorkloadProfile,
    node: NodeId,
    num_nodes: usize,
    rng: DeterministicRng,
    next_req: u64,
    pending: VecDeque<(Cycle, u64, MemOpKind)>,
    ops_generated: u64,
}

impl WorkloadGenerator {
    /// Creates a generator for `node` out of `num_nodes`, seeded so that every
    /// node gets an independent but reproducible stream derived from `seed`.
    pub fn new(profile: &WorkloadProfile, node: NodeId, num_nodes: usize, seed: u64) -> Self {
        let mut root = DeterministicRng::new(seed);
        let rng = root.fork(node.index() as u64 + 1);
        WorkloadGenerator {
            profile: profile.clone(),
            node,
            num_nodes: num_nodes.max(1),
            rng,
            next_req: 0,
            pending: VecDeque::new(),
            ops_generated: 0,
        }
    }

    /// The profile driving this generator.
    pub fn profile(&self) -> &WorkloadProfile {
        &self.profile
    }

    /// Number of operations generated so far.
    pub fn ops_generated(&self) -> u64 {
        self.ops_generated
    }

    fn think(&mut self) -> Cycle {
        let mean = self.profile.think_cycles_mean.max(1);
        // Uniform in [mean/2, 3*mean/2], averaging `mean`.
        self.rng.next_range(mean / 2 + 1, mean + mean / 2 + 2)
    }

    fn pick_region(&mut self) -> RegionKind {
        let mut weights = self.profile.region_weights;
        // Disable regions with no blocks so degenerate profiles stay valid.
        if self.profile.private_blocks == 0 {
            weights[0] = 0.0;
        }
        if self.profile.shared_read_blocks == 0 {
            weights[1] = 0.0;
        }
        if self.profile.migratory_blocks == 0 {
            weights[2] = 0.0;
        }
        if self.profile.producer_consumer_blocks == 0 {
            weights[3] = 0.0;
        }
        RegionKind::ALL[self.rng.pick_weighted(&weights)]
    }

    fn private_block(&mut self) -> u64 {
        PRIVATE_BASE
            + self.node.index() as u64 * PRIVATE_STRIDE
            + self.rng.next_below(self.profile.private_blocks.max(1))
    }

    fn shared_read_block(&mut self) -> u64 {
        let span = self.profile.shared_read_blocks.max(1);
        // A hot subset (1/16 of the region) absorbs a quarter of the
        // accesses, giving the mild skew real shared data exhibits.
        if self.rng.chance(0.25) {
            SHARED_READ_BASE + self.rng.next_below((span / 16).max(1))
        } else {
            SHARED_READ_BASE + self.rng.next_below(span)
        }
    }

    fn migratory_block(&mut self) -> u64 {
        MIGRATORY_BASE + self.rng.next_below(self.profile.migratory_blocks.max(1))
    }

    fn producer_consumer_block(&mut self) -> u64 {
        PRODUCER_CONSUMER_BASE
            + self
                .rng
                .next_below(self.profile.producer_consumer_blocks.max(1))
    }

    fn enqueue(&mut self, think: Cycle, block: u64, kind: MemOpKind) {
        self.pending.push_back((think, block, kind));
    }

    /// Generates the next memory operation for this processor.
    pub fn next_op(&mut self) -> GeneratedOp {
        if self.pending.is_empty() {
            self.generate_sequence();
        }
        let (think_cycles, block, kind) = self
            .pending
            .pop_front()
            .expect("generate_sequence always enqueues at least one operation");
        let id = ReqId::new((self.node.index() as u64) << 48 | self.next_req);
        self.next_req += 1;
        self.ops_generated += 1;
        GeneratedOp {
            think_cycles,
            op: MemOp::new(id, Address::new(block * BLOCK_BYTES), kind),
        }
    }

    /// Expands one logical workload action into one or more memory
    /// operations.
    fn generate_sequence(&mut self) {
        let think = self.think();
        if self.rng.chance(self.profile.ifetch_fraction) {
            let block = self.shared_or_private_code_block();
            self.enqueue(think, block, MemOpKind::Ifetch);
            return;
        }
        match self.pick_region() {
            RegionKind::Private => {
                let block = self.private_block();
                let kind = if self.rng.chance(self.profile.private_write_fraction) {
                    MemOpKind::Store
                } else {
                    MemOpKind::Load
                };
                self.enqueue(think, block, kind);
            }
            RegionKind::SharedReadMostly => {
                let block = self.shared_read_block();
                let kind = if self.rng.chance(self.profile.shared_write_fraction) {
                    MemOpKind::Store
                } else {
                    MemOpKind::Load
                };
                self.enqueue(think, block, kind);
            }
            RegionKind::Migratory => {
                // Migratory sharing: acquire (atomic), read, then update the
                // protected data — the classic lock-protected record access
                // that the migratory optimization targets.
                let block = self.migratory_block();
                let follow_up_think = self.think();
                self.enqueue(think, block, MemOpKind::Load);
                self.enqueue(follow_up_think, block, MemOpKind::Store);
            }
            RegionKind::ProducerConsumer => {
                let block = self.producer_consumer_block();
                let writer = (block % self.num_nodes as u64) as usize;
                let kind = if writer == self.node.index() {
                    MemOpKind::Store
                } else {
                    MemOpKind::Load
                };
                self.enqueue(think, block, kind);
            }
        }
    }

    /// Serializes the generator's cursor: RNG stream position, request
    /// counter, the queued tail of a partially-consumed multi-op sequence,
    /// and the ops counter. Profile, node, and node count are config-derived.
    pub fn save_state(&self, w: &mut SnapWriter) {
        w.u64(self.rng.state());
        w.u64(self.next_req);
        w.u64(self.ops_generated);
        w.seq(self.pending.iter(), |w, &(think, block, kind)| {
            w.u64(think);
            w.u64(block);
            w.u8(match kind {
                MemOpKind::Load => 0,
                MemOpKind::Store => 1,
                MemOpKind::Ifetch => 2,
                MemOpKind::Atomic => 3,
            });
        });
    }

    /// Restores [`WorkloadGenerator::save_state`] bytes onto a same-config
    /// generator.
    pub fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapshotError> {
        self.rng = DeterministicRng::from_state(r.u64()?);
        self.next_req = r.u64()?;
        self.ops_generated = r.u64()?;
        self.pending = r
            .seq(|r| {
                let think = r.u64()?;
                let block = r.u64()?;
                let kind = match r.u8()? {
                    0 => MemOpKind::Load,
                    1 => MemOpKind::Store,
                    2 => MemOpKind::Ifetch,
                    3 => MemOpKind::Atomic,
                    other => return Err(SnapshotError::Corrupt(format!("mem op tag {other}"))),
                };
                Ok((think, block, kind))
            })?
            .into();
        Ok(())
    }

    fn shared_or_private_code_block(&mut self) -> u64 {
        if self.profile.shared_read_blocks > 0 {
            self.shared_read_block()
        } else {
            self.private_block()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use tc_types::AccessType;

    fn generator(profile: WorkloadProfile, node: usize) -> WorkloadGenerator {
        WorkloadGenerator::new(&profile, NodeId::new(node), 16, 7)
    }

    #[test]
    fn same_seed_gives_identical_streams() {
        let mut a = generator(WorkloadProfile::oltp(), 3);
        let mut b = generator(WorkloadProfile::oltp(), 3);
        for _ in 0..1000 {
            assert_eq!(a.next_op(), b.next_op());
        }
    }

    #[test]
    fn different_nodes_get_different_streams() {
        let mut a = generator(WorkloadProfile::oltp(), 0);
        let mut b = generator(WorkloadProfile::oltp(), 1);
        let same = (0..200)
            .filter(|_| a.next_op().op.addr == b.next_op().op.addr)
            .count();
        assert!(same < 50, "streams should differ, {same} collisions");
    }

    #[test]
    fn request_ids_are_unique_and_monotonic() {
        let mut g = generator(WorkloadProfile::apache(), 2);
        let mut seen = HashSet::new();
        let mut last = None;
        for _ in 0..1000 {
            let id = g.next_op().op.id;
            assert!(seen.insert(id));
            if let Some(prev) = last {
                assert!(id > prev);
            }
            last = Some(id);
        }
    }

    #[test]
    fn private_accesses_never_touch_other_nodes_private_regions() {
        let mut g = generator(WorkloadProfile::private_only(), 5);
        for _ in 0..2000 {
            let op = g.next_op().op;
            let block = op.addr.value() / BLOCK_BYTES;
            assert!(block >= PRIVATE_BASE + 5 * PRIVATE_STRIDE);
            assert!(block < PRIVATE_BASE + 6 * PRIVATE_STRIDE);
        }
    }

    #[test]
    fn migratory_accesses_come_as_read_then_write_pairs() {
        let mut g = generator(WorkloadProfile::hot_block(), 1);
        let mut reads_followed_by_write_to_same_block = 0;
        let mut migratory_reads = 0;
        let mut prev: Option<MemOp> = None;
        for _ in 0..2000 {
            let op = g.next_op().op;
            let block = op.addr.value() / BLOCK_BYTES;
            if let Some(p) = prev {
                let prev_block = p.addr.value() / BLOCK_BYTES;
                if (MIGRATORY_BASE..PRODUCER_CONSUMER_BASE).contains(&prev_block)
                    && p.kind == MemOpKind::Load
                {
                    migratory_reads += 1;
                    if block == prev_block && op.kind == MemOpKind::Store {
                        reads_followed_by_write_to_same_block += 1;
                    }
                }
            }
            prev = Some(op);
        }
        assert!(migratory_reads > 100);
        assert_eq!(migratory_reads, reads_followed_by_write_to_same_block);
    }

    #[test]
    fn producer_consumer_blocks_have_a_single_writer() {
        let profile = WorkloadProfile::producer_consumer();
        for node in 0..4 {
            let mut g = WorkloadGenerator::new(&profile, NodeId::new(node), 4, 11);
            for _ in 0..2000 {
                let op = g.next_op().op;
                let block = op.addr.value() / BLOCK_BYTES;
                if block >= PRODUCER_CONSUMER_BASE && op.kind == MemOpKind::Store {
                    assert_eq!((block % 4) as usize, node, "non-owner wrote {block:#x}");
                }
            }
        }
    }

    #[test]
    fn oltp_has_more_write_sharing_than_specjbb() {
        let count_shared_writes = |profile: WorkloadProfile| {
            let mut writes = 0;
            for node in 0..4 {
                let mut g = WorkloadGenerator::new(&profile, NodeId::new(node), 4, 3);
                for _ in 0..2000 {
                    let op = g.next_op().op;
                    let block = op.addr.value() / BLOCK_BYTES;
                    if block >= SHARED_READ_BASE && op.access_type() == AccessType::Write {
                        writes += 1;
                    }
                }
            }
            writes
        };
        let oltp = count_shared_writes(WorkloadProfile::oltp());
        let jbb = count_shared_writes(WorkloadProfile::specjbb());
        assert!(
            oltp as f64 > 1.5 * jbb as f64,
            "OLTP shared writes ({oltp}) should clearly exceed SPECjbb's ({jbb})"
        );
    }

    #[test]
    fn think_times_average_near_the_profile_mean() {
        let mut g = generator(WorkloadProfile::oltp(), 0);
        let n = 20_000;
        let total: u64 = (0..n).map(|_| g.next_op().think_cycles).sum();
        let mean = total as f64 / n as f64;
        let target = WorkloadProfile::oltp().think_cycles_mean as f64;
        assert!(
            (mean - target).abs() < target * 0.5,
            "mean think time {mean} too far from {target}"
        );
    }

    #[test]
    fn footprint_stays_within_declared_regions() {
        let profile = WorkloadProfile::apache();
        let mut g = generator(profile.clone(), 0);
        for _ in 0..5000 {
            let block = g.next_op().op.addr.value() / BLOCK_BYTES;
            let in_private = (PRIVATE_BASE..PRIVATE_BASE + PRIVATE_STRIDE).contains(&block);
            let in_shared =
                block >= SHARED_READ_BASE && block < SHARED_READ_BASE + profile.shared_read_blocks;
            let in_migratory =
                block >= MIGRATORY_BASE && block < MIGRATORY_BASE + profile.migratory_blocks;
            let in_pc = block >= PRODUCER_CONSUMER_BASE
                && block < PRODUCER_CONSUMER_BASE + profile.producer_consumer_blocks;
            assert!(
                in_private || in_shared || in_migratory || in_pc,
                "block {block:#x} outside every region"
            );
        }
    }

    #[test]
    fn snapshot_mid_sequence_resumes_the_identical_stream() {
        let mut g = generator(WorkloadProfile::oltp(), 3);
        // Advance an odd number of ops so a migratory read/write pair is
        // likely split across the snapshot point (pending non-empty).
        for _ in 0..1001 {
            g.next_op();
        }
        let mut w = SnapWriter::new();
        g.save_state(&mut w);
        let bytes = w.into_bytes();
        let mut restored = generator(WorkloadProfile::oltp(), 3);
        let mut r = SnapReader::new(&bytes);
        restored.load_state(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(restored.ops_generated(), g.ops_generated());
        for _ in 0..2000 {
            assert_eq!(g.next_op(), restored.next_op());
        }
    }

    #[test]
    fn ops_generated_counter_tracks_output() {
        let mut g = generator(WorkloadProfile::specjbb(), 1);
        for _ in 0..10 {
            g.next_op();
        }
        assert_eq!(g.ops_generated(), 10);
    }
}
