//! Synthetic commercial-workload generators.
//!
//! The paper drives its evaluation with three commercial workloads running
//! under Simics full-system simulation: an online transaction processing
//! workload (OLTP), static web serving (Apache), and Java middleware
//! (SPECjbb). Those workloads and their checkpoints are proprietary, so this
//! reproduction substitutes parameterized synthetic generators that exercise
//! the same protocol behaviour the real workloads are characterized by
//! (Barroso et al., and the paper's own Section 6):
//!
//! * abundant thread-level parallelism with frequent sharing, so a large
//!   fraction of misses are **cache-to-cache transfers**;
//! * **migratory sharing** of lock-protected structures (read then write by
//!   one processor at a time);
//! * large **read-mostly shared** regions (code, lookup tables, page cache);
//! * per-thread **private** data; and
//! * enough total shared data that simultaneous races on a single block are
//!   rare — the property that makes TokenB's reissues uncommon (Table 2).
//!
//! Each [`WorkloadProfile`] fixes region sizes and access mix; a
//! [`WorkloadGenerator`] turns a profile into a deterministic per-processor
//! stream of memory operations separated by "think time" compute cycles.
//!
//! # Example
//!
//! ```
//! use tc_workloads::{WorkloadGenerator, WorkloadProfile};
//! use tc_types::NodeId;
//!
//! let profile = WorkloadProfile::oltp();
//! let mut generator = WorkloadGenerator::new(&profile, NodeId::new(0), 16, 42);
//! let op = generator.next_op();
//! assert!(op.think_cycles < 1_000);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod generator;
pub mod profile;

pub use generator::{GeneratedOp, WorkloadGenerator};
pub use profile::{RegionKind, WorkloadProfile};
