//! Workload profiles: region sizes and access mixes.

use std::fmt;

/// The kinds of memory regions a synthetic workload touches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RegionKind {
    /// Per-processor private data (never shared).
    Private,
    /// Read-mostly shared data (code, lookup tables, page cache).
    SharedReadMostly,
    /// Migratory data: lock-protected structures read then written by one
    /// processor at a time.
    Migratory,
    /// Producer-consumer data: one writer, several readers per block.
    ProducerConsumer,
}

impl RegionKind {
    /// All region kinds, in the order used by the weight vectors.
    pub const ALL: [RegionKind; 4] = [
        RegionKind::Private,
        RegionKind::SharedReadMostly,
        RegionKind::Migratory,
        RegionKind::ProducerConsumer,
    ];
}

impl fmt::Display for RegionKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            RegionKind::Private => "private",
            RegionKind::SharedReadMostly => "shared-read-mostly",
            RegionKind::Migratory => "migratory",
            RegionKind::ProducerConsumer => "producer-consumer",
        };
        f.write_str(name)
    }
}

/// A synthetic workload description.
///
/// All block counts are in cache blocks (64 bytes each). The access-mix
/// weights do not need to sum to one; they are normalized by the generator.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadProfile {
    /// Name used in experiment reports ("OLTP", "Apache", "SPECjbb", ...).
    pub name: &'static str,
    /// Private blocks per processor.
    pub private_blocks: u64,
    /// Blocks in the read-mostly shared region.
    pub shared_read_blocks: u64,
    /// Blocks in the migratory region (locks plus protected data).
    pub migratory_blocks: u64,
    /// Blocks in the producer-consumer region.
    pub producer_consumer_blocks: u64,
    /// Access-mix weights over [`RegionKind::ALL`] (private, shared
    /// read-mostly, migratory, producer-consumer).
    pub region_weights: [f64; 4],
    /// Fraction of private-region accesses that are stores.
    pub private_write_fraction: f64,
    /// Fraction of shared-read-region accesses that are stores (small).
    pub shared_write_fraction: f64,
    /// Mean compute ("think") cycles between memory operations.
    pub think_cycles_mean: u64,
    /// Fraction of operations that are instruction fetches.
    pub ifetch_fraction: f64,
}

impl WorkloadProfile {
    /// Online transaction processing: the most communication-intensive of
    /// the three — small rows protected by locks migrate between processors,
    /// so most misses are cache-to-cache and migratory sharing dominates.
    pub fn oltp() -> Self {
        WorkloadProfile {
            name: "OLTP",
            private_blocks: 512,
            shared_read_blocks: 2 * 1024,
            migratory_blocks: 384,
            producer_consumer_blocks: 128,
            region_weights: [0.42, 0.30, 0.22, 0.06],
            private_write_fraction: 0.30,
            shared_write_fraction: 0.02,
            think_cycles_mean: 60,
            ifetch_fraction: 0.05,
        }
    }

    /// Static web serving (Apache): substantial OS activity, a large
    /// read-mostly page cache, and moderate migratory sharing of kernel
    /// structures. Highest overall miss rate of the three.
    pub fn apache() -> Self {
        WorkloadProfile {
            name: "Apache",
            private_blocks: 512,
            shared_read_blocks: 3 * 1024,
            migratory_blocks: 256,
            producer_consumer_blocks: 192,
            region_weights: [0.38, 0.36, 0.18, 0.08],
            private_write_fraction: 0.32,
            shared_write_fraction: 0.03,
            think_cycles_mean: 50,
            ifetch_fraction: 0.06,
        }
    }

    /// Java middleware (SPECjbb): mostly thread-local object allocation with
    /// comparatively little sharing; the least communication-bound workload.
    pub fn specjbb() -> Self {
        WorkloadProfile {
            name: "SPECjbb",
            private_blocks: 1024,
            shared_read_blocks: 1536,
            migratory_blocks: 128,
            producer_consumer_blocks: 64,
            region_weights: [0.62, 0.24, 0.10, 0.04],
            private_write_fraction: 0.38,
            shared_write_fraction: 0.02,
            think_cycles_mean: 70,
            ifetch_fraction: 0.04,
        }
    }

    /// All three commercial workloads, in the order the paper's figures list
    /// them (Apache, OLTP, SPECjbb).
    pub fn commercial() -> Vec<WorkloadProfile> {
        vec![
            WorkloadProfile::apache(),
            WorkloadProfile::oltp(),
            WorkloadProfile::specjbb(),
        ]
    }

    /// Microbenchmark: every processor hammers a handful of contended blocks.
    /// Designed to provoke racing transient requests, reissues, and
    /// persistent requests far more often than any realistic workload.
    pub fn hot_block() -> Self {
        WorkloadProfile {
            name: "HotBlock",
            private_blocks: 64,
            shared_read_blocks: 0,
            migratory_blocks: 4,
            producer_consumer_blocks: 0,
            region_weights: [0.10, 0.0, 0.90, 0.0],
            private_write_fraction: 0.3,
            shared_write_fraction: 0.0,
            think_cycles_mean: 2,
            ifetch_fraction: 0.0,
        }
    }

    /// Microbenchmark: purely private data; no coherence traffic beyond cold
    /// misses. Useful as a lower bound and for protocol-overhead tests.
    pub fn private_only() -> Self {
        WorkloadProfile {
            name: "Private",
            private_blocks: 8 * 1024,
            shared_read_blocks: 0,
            migratory_blocks: 0,
            producer_consumer_blocks: 0,
            region_weights: [1.0, 0.0, 0.0, 0.0],
            private_write_fraction: 0.35,
            shared_write_fraction: 0.0,
            think_cycles_mean: 5,
            ifetch_fraction: 0.0,
        }
    }

    /// Microbenchmark: uniformly shared read-write data, used for the
    /// scalability experiment (Question 5 of the paper).
    pub fn uniform_shared() -> Self {
        WorkloadProfile {
            name: "UniformShared",
            private_blocks: 256,
            shared_read_blocks: 1024,
            migratory_blocks: 512,
            producer_consumer_blocks: 256,
            region_weights: [0.25, 0.30, 0.35, 0.10],
            private_write_fraction: 0.30,
            shared_write_fraction: 0.05,
            think_cycles_mean: 40,
            ifetch_fraction: 0.0,
        }
    }

    /// Microbenchmark: migratory sharing dominant. A small set of
    /// lock-protected blocks that every processor reads then writes with
    /// almost no think time, so write ownership of each block ping-pongs
    /// around the ring of nodes continuously — the access pattern the
    /// migratory optimization (and the writeback plane under it) exists for.
    pub fn migratory() -> Self {
        WorkloadProfile {
            name: "Migratory",
            private_blocks: 128,
            shared_read_blocks: 0,
            migratory_blocks: 12,
            producer_consumer_blocks: 0,
            region_weights: [0.15, 0.0, 0.85, 0.0],
            private_write_fraction: 0.3,
            shared_write_fraction: 0.0,
            think_cycles_mean: 3,
            ifetch_fraction: 0.0,
        }
    }

    /// Microbenchmark: producer-consumer communication only.
    pub fn producer_consumer() -> Self {
        WorkloadProfile {
            name: "ProducerConsumer",
            private_blocks: 1024,
            shared_read_blocks: 0,
            migratory_blocks: 0,
            producer_consumer_blocks: 2 * 1024,
            region_weights: [0.30, 0.0, 0.0, 0.70],
            private_write_fraction: 0.3,
            shared_write_fraction: 0.0,
            think_cycles_mean: 4,
            ifetch_fraction: 0.0,
        }
    }

    /// The names of every public profile constructor, i.e. the vocabulary of
    /// [`WorkloadProfile::by_name`] (aliases not included). Order matches
    /// [`WorkloadProfile::all`].
    pub const ALL_NAMES: [&'static str; 8] = [
        "OLTP",
        "Apache",
        "SPECjbb",
        "HotBlock",
        "Private",
        "UniformShared",
        "Migratory",
        "ProducerConsumer",
    ];

    /// Every public profile, in [`WorkloadProfile::ALL_NAMES`] order: the
    /// three commercial calibrations followed by the four microbenchmarks.
    /// The catalog is what keeps name resolution honest — a new constructor
    /// that is not added here fails the round-trip test instead of silently
    /// missing [`WorkloadProfile::by_name`].
    pub fn all() -> Vec<WorkloadProfile> {
        vec![
            WorkloadProfile::oltp(),
            WorkloadProfile::apache(),
            WorkloadProfile::specjbb(),
            WorkloadProfile::hot_block(),
            WorkloadProfile::private_only(),
            WorkloadProfile::uniform_shared(),
            WorkloadProfile::migratory(),
            WorkloadProfile::producer_consumer(),
        ]
    }

    /// Looks a profile up by name, ignoring case and `-`/`_` separators, so
    /// every profile's own `name` round-trips (`"ProducerConsumer"`,
    /// `"producer_consumer"`, and `"producer-consumer"` all resolve) along
    /// with a few short aliases.
    pub fn by_name(name: &str) -> Option<WorkloadProfile> {
        let normalized: String = name
            .chars()
            .filter(|c| *c != '_' && *c != '-')
            .map(|c| c.to_ascii_lowercase())
            .collect();
        match normalized.as_str() {
            "oltp" => Some(WorkloadProfile::oltp()),
            "apache" => Some(WorkloadProfile::apache()),
            "specjbb" | "jbb" => Some(WorkloadProfile::specjbb()),
            "hotblock" => Some(WorkloadProfile::hot_block()),
            "private" | "privateonly" => Some(WorkloadProfile::private_only()),
            "uniform" | "uniformshared" => Some(WorkloadProfile::uniform_shared()),
            "migratory" => Some(WorkloadProfile::migratory()),
            "producerconsumer" | "prodcons" => Some(WorkloadProfile::producer_consumer()),
            _ => None,
        }
    }

    /// Total number of distinct blocks a `num_nodes`-processor system touches
    /// under this profile.
    pub fn footprint_blocks(&self, num_nodes: usize) -> u64 {
        self.private_blocks * num_nodes as u64
            + self.shared_read_blocks
            + self.migratory_blocks
            + self.producer_consumer_blocks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn commercial_profiles_have_distinct_characters() {
        let oltp = WorkloadProfile::oltp();
        let apache = WorkloadProfile::apache();
        let jbb = WorkloadProfile::specjbb();
        // OLTP is the most migratory; SPECjbb the least shared.
        assert!(oltp.region_weights[2] > apache.region_weights[2]);
        assert!(oltp.region_weights[2] > jbb.region_weights[2]);
        assert!(jbb.region_weights[0] > oltp.region_weights[0]);
    }

    #[test]
    fn lookup_by_name_is_case_insensitive() {
        assert_eq!(WorkloadProfile::by_name("OLTP").unwrap().name, "OLTP");
        assert_eq!(WorkloadProfile::by_name("Apache").unwrap().name, "Apache");
        assert_eq!(WorkloadProfile::by_name("SPECjbb").unwrap().name, "SPECjbb");
        assert!(WorkloadProfile::by_name("nonsense").is_none());
    }

    /// Every profile in the catalog resolves back to itself through its own
    /// `name`, so a new constructor cannot silently miss name resolution —
    /// it either joins `all()`/`ALL_NAMES` (and this test enforces the
    /// `by_name` arm) or it is unreachable by catalog and fails the length
    /// check the moment someone adds it to one list but not the others.
    #[test]
    fn every_catalog_profile_round_trips_through_by_name() {
        let all = WorkloadProfile::all();
        assert_eq!(all.len(), WorkloadProfile::ALL_NAMES.len());
        for (profile, expected_name) in all.iter().zip(WorkloadProfile::ALL_NAMES) {
            assert_eq!(profile.name, expected_name);
            let resolved = WorkloadProfile::by_name(profile.name)
                .unwrap_or_else(|| panic!("{} does not resolve via by_name", profile.name));
            assert_eq!(
                &resolved, profile,
                "{} resolves to a different profile",
                profile.name
            );
        }
        // Catalog names are unique.
        let mut names: Vec<_> = all.iter().map(|p| p.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), all.len());
    }

    #[test]
    fn separator_and_alias_lookups_resolve() {
        for (alias, canonical) in [
            ("producer-consumer", "ProducerConsumer"),
            ("producer_consumer", "ProducerConsumer"),
            ("prodcons", "ProducerConsumer"),
            ("uniform", "UniformShared"),
            ("uniform_shared", "UniformShared"),
            ("hot_block", "HotBlock"),
            ("private_only", "Private"),
            ("jbb", "SPECjbb"),
        ] {
            assert_eq!(
                WorkloadProfile::by_name(alias).map(|p| p.name),
                Some(canonical),
                "alias {alias}"
            );
        }
    }

    #[test]
    fn commercial_returns_all_three_in_figure_order() {
        let all = WorkloadProfile::commercial();
        let names: Vec<_> = all.iter().map(|p| p.name).collect();
        assert_eq!(names, vec!["Apache", "OLTP", "SPECjbb"]);
    }

    #[test]
    fn footprints_scale_with_node_count() {
        let p = WorkloadProfile::oltp();
        assert!(p.footprint_blocks(16) > p.footprint_blocks(4));
        assert_eq!(
            p.footprint_blocks(1) - p.footprint_blocks(0),
            p.private_blocks
        );
    }

    #[test]
    fn hot_block_microbenchmark_is_tiny_and_contended() {
        let p = WorkloadProfile::hot_block();
        assert!(p.migratory_blocks <= 8);
        assert!(p.region_weights[2] > 0.5);
    }

    #[test]
    fn weights_are_non_negative_and_non_degenerate() {
        for p in WorkloadProfile::all() {
            assert!(p.region_weights.iter().all(|w| *w >= 0.0), "{}", p.name);
            assert!(p.region_weights.iter().sum::<f64>() > 0.0, "{}", p.name);
            assert!(p.think_cycles_mean > 0, "{}", p.name);
        }
    }

    #[test]
    fn region_kind_display_names_are_distinct() {
        let mut names: Vec<String> = RegionKind::ALL.iter().map(|r| r.to_string()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 4);
    }
}
