//! Token Coherence: a reproduction of *"Token Coherence: Decoupling
//! Performance and Correctness"* (Martin, Hill & Wood, ISCA 2003).
//!
//! This umbrella crate re-exports the workspace so that examples, integration
//! tests, and downstream users can depend on a single crate:
//!
//! * [`core`] (`tc-core`) — the paper's contribution: the token-counting
//!   correctness substrate, persistent-request arbitration, and the TokenB
//!   broadcast performance protocol.
//! * [`protocols`] (`tc-protocols`) — the baselines the paper compares
//!   against: MOSI Snooping on an ordered tree, a full-map blocking
//!   Directory, and an AMD-Hammer-style broadcast protocol.
//! * [`system`] (`tc-system`) — the 16-node target system of Table 1: the
//!   processor model, the event-driven runner, the safety/starvation
//!   verifier, ready-made experiment configurations for every table and
//!   figure of the evaluation, and the multi-threaded [`system::Campaign`]
//!   driver that runs whole experiment sets with bit-identical results at
//!   any thread count. Controllers are constructed through the
//!   [`protocols::registry`], so a new protocol variant is a registration,
//!   not an engine edit.
//! * [`interconnect`], [`memsys`], [`workloads`], [`sim`], [`types`] — the
//!   substrates: ordered-tree and unordered-torus interconnects with link
//!   contention, caches/MSHRs/home memory, synthetic commercial workloads,
//!   the event queue, and the shared vocabulary types.
//!
//! # Quickstart
//!
//! ```
//! use token_coherence::prelude::*;
//!
//! // A 4-node TokenB system on the unordered torus running an OLTP-like
//! // workload (the full 16-node configuration is `SystemConfig::isca03_default()`).
//! let config = SystemConfig::isca03_default()
//!     .with_nodes(4)
//!     .with_protocol(ProtocolKind::TokenB);
//! let mut system = System::build(&config, &WorkloadProfile::oltp());
//! let report = system.run(RunOptions { ops_per_node: 500, max_cycles: 50_000_000, ..RunOptions::default() });
//!
//! assert!(report.verified().is_ok());
//! println!("{report}");
//! ```

pub use tc_core as core;
pub use tc_interconnect as interconnect;
pub use tc_memsys as memsys;
pub use tc_protocols as protocols;
pub use tc_sim as sim;
pub use tc_system as system;
pub use tc_types as types;
pub use tc_workloads as workloads;

/// The most commonly used items, for `use token_coherence::prelude::*`.
pub mod prelude {
    pub use tc_core::TokenBController;
    pub use tc_protocols::{
        DirectoryController, HammerController, ProtocolRegistry, SnoopingController,
    };
    pub use tc_system::{
        Campaign, CampaignReport, CampaignSummary, ExperimentPoint, RunOptions, RunReport, System,
    };
    pub use tc_types::{
        BandwidthMode, CoherenceController, DirectoryMode, ProtocolKind, SystemConfig, TopologyKind,
    };
    pub use tc_workloads::WorkloadProfile;
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_exposes_the_main_types() {
        use crate::prelude::*;
        let config = SystemConfig::isca03_default();
        assert_eq!(config.protocol, ProtocolKind::TokenB);
        assert_eq!(WorkloadProfile::oltp().name, "OLTP");
    }
}
